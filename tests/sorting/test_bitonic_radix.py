"""Unit tests for the bitonic network and radix models."""

import pytest

from repro.sorting.bitonic import bitonic_comparator_count, bitonic_depth
from repro.sorting.radix import radix_passes, radix_record_traffic
from repro.sorting.units import BitonicSorterModel, QuickSortUnitModel, SorterModel


class TestBitonic:
    @pytest.mark.parametrize("n,depth", [(1, 0), (2, 1), (4, 3), (8, 6), (16, 10)])
    def test_depth_formula(self, n, depth):
        assert bitonic_depth(n) == depth

    @pytest.mark.parametrize("n,count", [(2, 1), (4, 6), (8, 24), (16, 80)])
    def test_comparator_count_formula(self, n, count):
        assert bitonic_comparator_count(n) == count

    def test_non_power_of_two_padded(self):
        assert bitonic_depth(5) == bitonic_depth(8)
        assert bitonic_comparator_count(5) == bitonic_comparator_count(8)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            bitonic_depth(0)

    def test_superlinear_growth(self):
        """Bitonic work grows as n log^2 n: doubling input more than
        doubles comparator count — the economics behind sharing sorts."""
        assert bitonic_comparator_count(512) > 2 * bitonic_comparator_count(256)


class TestRadix:
    def test_pass_count(self):
        assert radix_passes(64, 8) == 8
        assert radix_passes(32, 8) == 4
        assert radix_passes(17, 8) == 3

    def test_traffic(self):
        # 4 passes x (read + write) x 1000 records x 6 bytes.
        assert radix_record_traffic(1000, 6, 32, 8) == 2 * 4 * 1000 * 6

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            radix_passes(0)
        with pytest.raises(ValueError):
            radix_record_traffic(-1, 6, 32)


class TestUnits:
    def test_base_model_parallelism(self):
        model = SorterModel(comparators=16)
        assert model.cycles_for_comparisons(1600) == pytest.approx(100.0)

    def test_invalid_comparators_rejected(self):
        with pytest.raises(ValueError):
            SorterModel(comparators=0)

    def test_quicksort_unit_measures_real_keys(self, rng):
        model = QuickSortUnitModel(comparators=16)
        cycles, comparisons = model.cycles_for_keys(rng.random(512))
        assert comparisons > 0
        assert cycles >= comparisons / 16

    def test_quicksort_unit_floor_is_pass_count(self, rng):
        """With enormous parallelism, sequential partition passes bound
        the sort."""
        model = QuickSortUnitModel(comparators=10_000)
        cycles, _ = model.cycles_for_keys(rng.random(512))
        assert cycles >= 1.0

    def test_bitonic_model_depth_floor(self):
        model = BitonicSorterModel(comparators=10_000)
        assert model.cycles_for_length(16) == float(bitonic_depth(16))

    def test_bitonic_model_throughput_bound(self):
        model = BitonicSorterModel(comparators=4)
        assert model.cycles_for_length(16) == pytest.approx(80 / 4)

    def test_bitonic_wasteful_vs_quicksort_at_scale(self, rng):
        """At equal comparator budget the network does asymptotically
        more work — one reason redundant per-tile sorting is costly on
        GSCore-class hardware."""
        n = 1024
        quick = QuickSortUnitModel(comparators=16)
        bitonic = BitonicSorterModel(comparators=16)
        q_cycles, _ = quick.cycles_for_keys(rng.random(n))
        assert bitonic.cycles_for_length(n) > q_cycles

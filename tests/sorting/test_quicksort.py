"""Unit tests for the instrumented quicksort."""

import numpy as np
import pytest

from repro.raster.sorting import sort_comparison_count
from repro.sorting.quicksort import counting_quicksort


class TestCorrectness:
    def test_sorts_random_keys(self, rng):
        keys = rng.random(500)
        result = counting_quicksort(keys)
        assert np.all(np.diff(keys[result.order]) >= 0)

    def test_order_is_permutation(self, rng):
        keys = rng.random(200)
        result = counting_quicksort(keys)
        assert sorted(result.order.tolist()) == list(range(200))

    def test_stable_tie_break_by_index(self):
        keys = np.array([2.0, 1.0, 1.0, 1.0, 0.5])
        result = counting_quicksort(keys)
        assert result.order.tolist() == [4, 1, 2, 3, 0]

    def test_matches_lexsort_convention(self, rng):
        """Must agree exactly with the pipeline's (depth, id) order."""
        keys = rng.choice([1.0, 2.0, 3.0], size=100)  # many ties
        result = counting_quicksort(keys)
        expected = np.lexsort((np.arange(100), keys))
        assert np.array_equal(result.order, expected)

    def test_empty_and_single(self):
        assert counting_quicksort(np.array([])).order.size == 0
        assert counting_quicksort(np.array([5.0])).order.tolist() == [0]
        assert counting_quicksort(np.array([5.0])).comparisons == 0

    def test_already_sorted(self):
        keys = np.arange(100, dtype=float)
        result = counting_quicksort(keys)
        assert np.array_equal(result.order, np.arange(100))

    def test_reverse_sorted(self):
        keys = np.arange(100, dtype=float)[::-1].copy()
        result = counting_quicksort(keys)
        assert np.array_equal(keys[result.order], np.arange(100, dtype=float))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            counting_quicksort(np.zeros((3, 3)))


class TestInstrumentation:
    def test_comparisons_near_nlogn(self, rng):
        """Median-of-3 quicksort stays within a small factor of the
        n log2 n closed form on random inputs — validating the model the
        GPU/GSM analyses use."""
        keys = rng.random(2000)
        result = counting_quicksort(keys)
        model = sort_comparison_count(2000)
        assert 0.5 * model < result.comparisons < 2.5 * model

    def test_logarithmic_depth(self, rng):
        keys = rng.random(4096)
        result = counting_quicksort(keys)
        assert result.max_depth <= 4 * int(np.log2(4096))

    def test_counts_grow_with_n(self, rng):
        small = counting_quicksort(rng.random(100)).comparisons
        large = counting_quicksort(rng.random(1000)).comparisons
        assert large > small

    def test_deterministic(self, rng):
        keys = rng.random(300)
        a = counting_quicksort(keys)
        b = counting_quicksort(keys)
        assert a.comparisons == b.comparisons
        assert np.array_equal(a.order, b.order)

"""Unit tests for the AABB / OBB / Ellipse boundary tests."""

import numpy as np
import pytest

from repro.gaussians.cloud import GaussianCloud
from repro.gaussians.projection import project
from repro.tiles.boundary import (
    BoundaryMethod,
    bounding_rect,
    gaussian_rect_hits,
    obb_half_extents,
)


def _project_one(camera, *, scale=(0.3, 0.3, 0.3), quat=(1, 0, 0, 0), depth=5.0):
    cloud = GaussianCloud(
        positions=np.array([[0.0, 0.0, depth]]),
        scales=np.array([scale], dtype=float),
        rotations=np.array([quat], dtype=float),
        opacities=np.array([0.9]),
        sh_coeffs=np.zeros((1, 1, 3)),
    )
    return project(cloud, camera)


def _rect_around(cx, cy, half):
    return np.array([[cx - half, cy - half, cx + half, cy + half]])


class TestMethodProperties:
    def test_relative_costs_ordered(self):
        assert (
            BoundaryMethod.AABB.relative_test_cost
            < BoundaryMethod.OBB.relative_test_cost
            < BoundaryMethod.ELLIPSE.relative_test_cost
        )

    def test_from_string(self):
        assert BoundaryMethod("aabb") is BoundaryMethod.AABB

    def test_unknown_method_rejected(self, projected):
        with pytest.raises(ValueError):
            gaussian_rect_hits(projected, 0, np.zeros((1, 4)), "hexagon")

    def test_bad_rect_shape_rejected(self, projected):
        with pytest.raises(ValueError):
            gaussian_rect_hits(projected, 0, np.zeros((4,)), BoundaryMethod.AABB)


class TestContainmentHierarchy:
    """The ellipse is contained in both boxes: any rect the ellipse hits,
    the OBB and the AABB must hit too."""

    def test_ellipse_subset_of_boxes(self, projected, camera, rng):
        rects = np.stack(
            [
                rng.uniform(0, camera.width, 200),
                rng.uniform(0, camera.height, 200),
                np.zeros(200),
                np.zeros(200),
            ],
            axis=1,
        )
        rects[:, 2] = rects[:, 0] + 8
        rects[:, 3] = rects[:, 1] + 8
        for i in range(min(len(projected), 20)):
            ell = gaussian_rect_hits(projected, i, rects, BoundaryMethod.ELLIPSE)
            obb = gaussian_rect_hits(projected, i, rects, BoundaryMethod.OBB)
            aabb = gaussian_rect_hits(projected, i, rects, BoundaryMethod.AABB)
            assert np.all(obb[ell]), "OBB must contain the ellipse"
            assert np.all(aabb[ell]), "AABB must contain the ellipse"


class TestAxisAlignedCase:
    """For an axis-aligned isotropic Gaussian all three methods agree on
    axis-aligned rectangles away from corners."""

    def test_rect_at_centre_hits_all(self, camera):
        proj = _project_one(camera)
        rect = _rect_around(camera.cx, camera.cy, 2.0)
        for method in BoundaryMethod:
            assert gaussian_rect_hits(proj, 0, rect, method)[0]

    def test_distant_rect_misses_all(self, camera):
        proj = _project_one(camera)
        r = proj.radii[0]
        rect = _rect_around(camera.cx + 3 * r, camera.cy, 1.0)
        for method in BoundaryMethod:
            assert not gaussian_rect_hits(proj, 0, rect, method)[0]

    def test_corner_rect_separates_ellipse_from_aabb(self, camera):
        # A small rect at the bounding square's corner touches the square
        # but not the inscribed circle/ellipse.
        proj = _project_one(camera)
        r = proj.radii[0]
        d = r * 0.95  # inside the square corner, outside the circle
        rect = _rect_around(camera.cx + d, camera.cy + d, 0.01)
        assert gaussian_rect_hits(proj, 0, rect, BoundaryMethod.AABB)[0]
        assert not gaussian_rect_hits(proj, 0, rect, BoundaryMethod.ELLIPSE)[0]


class TestEllipseExactness:
    def test_point_rect_on_boundary(self, camera):
        proj = _project_one(camera)
        r = proj.radii[0]
        # Degenerate rects just inside/outside the 3-sigma circle on the x axis.
        inside = _rect_around(camera.cx + 0.99 * r, camera.cy, 1e-6)
        outside = _rect_around(camera.cx + 1.01 * r, camera.cy, 1e-6)
        assert gaussian_rect_hits(proj, 0, inside, BoundaryMethod.ELLIPSE)[0]
        assert not gaussian_rect_hits(proj, 0, outside, BoundaryMethod.ELLIPSE)[0]

    def test_rect_containing_ellipse_hits(self, camera):
        proj = _project_one(camera)
        rect = np.array([[0.0, 0.0, camera.width, camera.height]])
        assert gaussian_rect_hits(proj, 0, rect, BoundaryMethod.ELLIPSE)[0]

    def test_rect_edge_grazing_circle(self, camera):
        proj = _project_one(camera)
        r = proj.radii[0]
        # Tall thin rect whose left edge passes at x = cx + 0.9 r: the
        # closest point to the centre lies on that edge.
        rect = np.array(
            [[camera.cx + 0.9 * r, camera.cy - 50.0, camera.cx + 0.9 * r + 100.0,
              camera.cy + 50.0]]
        )
        assert gaussian_rect_hits(proj, 0, rect, BoundaryMethod.ELLIPSE)[0]

    def test_anisotropic_orientation_matters(self, camera):
        # A very elongated Gaussian rotated 45 degrees: rects along the
        # long diagonal hit, rects along the short diagonal miss.
        c, s = np.cos(np.pi / 8), np.sin(np.pi / 8)  # 45 deg rotation quaternion
        proj = _project_one(
            camera, scale=(0.6, 0.02, 0.02), quat=(c, 0.0, 0.0, s)
        )
        long_r = proj.radii[0]
        u = proj.eigvecs[0, :, 0]  # long axis direction in screen space
        along = _rect_around(
            camera.cx + 0.8 * long_r * u[0], camera.cy + 0.8 * long_r * u[1], 0.5
        )
        across = _rect_around(
            camera.cx - 0.8 * long_r * u[1], camera.cy + 0.8 * long_r * u[0], 0.5
        )
        assert gaussian_rect_hits(proj, 0, along, BoundaryMethod.ELLIPSE)[0]
        assert not gaussian_rect_hits(proj, 0, across, BoundaryMethod.ELLIPSE)[0]


class TestOBB:
    def test_half_extents_sorted(self, projected):
        half = obb_half_extents(projected)
        assert np.all(half[:, 0] >= half[:, 1])

    def test_obb_tighter_than_aabb_for_rotated(self, camera):
        c, s = np.cos(np.pi / 8), np.sin(np.pi / 8)
        proj = _project_one(camera, scale=(0.6, 0.02, 0.02), quat=(c, 0.0, 0.0, s))
        long_r = proj.radii[0]
        u = proj.eigvecs[0, :, 0]
        # Perpendicular to the long axis at a distance beyond the short
        # half extent but inside the AABB of the rotated shape.
        perp = np.array([-u[1], u[0]])
        short = obb_half_extents(proj)[0, 1]
        d = short + 0.2 * long_r
        rect = _rect_around(camera.cx + d * perp[0], camera.cy + d * perp[1], 0.5)
        assert gaussian_rect_hits(proj, 0, rect, BoundaryMethod.AABB)[0]
        assert not gaussian_rect_hits(proj, 0, rect, BoundaryMethod.OBB)[0]


class TestBoundingRect:
    def test_aabb_bounding_rect_square(self, projected):
        x0, y0, x1, y1 = bounding_rect(projected, 0, BoundaryMethod.AABB)
        r = projected.radii[0]
        assert (x1 - x0) == pytest.approx(2 * r)
        assert (y1 - y0) == pytest.approx(2 * r)

    def test_ellipse_bounding_rect_contains_ellipse_boundary(self, projected):
        i = 0
        x0, y0, x1, y1 = bounding_rect(projected, i, BoundaryMethod.ELLIPSE)
        # Sample points on the 3-sigma ellipse and check containment.
        theta = np.linspace(0, 2 * np.pi, 64)
        axes = 3.0 * np.sqrt(projected.eigvals[i])
        pts = (
            projected.means2d[i][None, :]
            + np.outer(np.cos(theta) * axes[0], projected.eigvecs[i, :, 0])
            + np.outer(np.sin(theta) * axes[1], projected.eigvecs[i, :, 1])
        )
        eps = 1e-9
        assert np.all(pts[:, 0] >= x0 - eps) and np.all(pts[:, 0] <= x1 + eps)
        assert np.all(pts[:, 1] >= y0 - eps) and np.all(pts[:, 1] <= y1 + eps)

    def test_obb_rect_contains_ellipse_rect(self, projected):
        for i in range(min(len(projected), 10)):
            ex0, ey0, ex1, ey1 = bounding_rect(projected, i, BoundaryMethod.ELLIPSE)
            ox0, oy0, ox1, oy1 = bounding_rect(projected, i, BoundaryMethod.OBB)
            assert ox0 <= ex0 + 1e-9 and oy0 <= ey0 + 1e-9
            assert ox1 >= ex1 - 1e-9 and oy1 >= ey1 - 1e-9

"""Unit tests for tile identification."""

import numpy as np
import pytest

from repro.tiles.boundary import BoundaryMethod, gaussian_rect_hits
from repro.tiles.grid import TileGrid
from repro.tiles.identify import identify_tiles


@pytest.fixture
def grid(camera):
    return TileGrid(camera.width, camera.height, 16)


class TestAssignmentStructure:
    def test_pairs_aligned(self, projected, grid):
        assignment = identify_tiles(projected, grid, BoundaryMethod.AABB)
        assert assignment.gaussian_ids.shape == assignment.tile_ids.shape
        assert assignment.num_pairs == assignment.gaussian_ids.shape[0]

    def test_tile_ids_in_range(self, projected, grid):
        assignment = identify_tiles(projected, grid, BoundaryMethod.ELLIPSE)
        assert np.all(assignment.tile_ids >= 0)
        assert np.all(assignment.tile_ids < grid.num_tiles)

    def test_counts_consistent(self, projected, grid):
        assignment = identify_tiles(projected, grid, BoundaryMethod.OBB)
        assert assignment.tiles_per_gaussian().sum() == assignment.num_pairs
        assert assignment.gaussians_per_tile().sum() == assignment.num_pairs

    def test_no_duplicate_pairs(self, projected, grid):
        assignment = identify_tiles(projected, grid, BoundaryMethod.AABB)
        pairs = set(zip(assignment.gaussian_ids.tolist(), assignment.tile_ids.tolist()))
        assert len(pairs) == assignment.num_pairs

    def test_per_tile_lists_partition_pairs(self, projected, grid):
        assignment = identify_tiles(projected, grid, BoundaryMethod.ELLIPSE)
        per_tile = assignment.per_tile_gaussians()
        assert len(per_tile) == grid.num_tiles
        assert sum(len(t) for t in per_tile) == assignment.num_pairs

    def test_per_tile_lists_cached(self, projected, grid):
        assignment = identify_tiles(projected, grid, BoundaryMethod.AABB)
        assert assignment.per_tile_gaussians() is assignment.per_tile_gaussians()


class TestAgainstDirectTest:
    """Assignments must agree with the boundary test applied per tile."""

    @pytest.mark.parametrize(
        "method", [BoundaryMethod.AABB, BoundaryMethod.OBB, BoundaryMethod.ELLIPSE]
    )
    def test_assignment_matches_bruteforce(self, projected, grid, method):
        assignment = identify_tiles(projected, grid, method)
        all_rects = grid.tile_rects(np.arange(grid.num_tiles))
        for i in range(len(projected)):
            expected = set(np.flatnonzero(
                gaussian_rect_hits(projected, i, all_rects, method)
            ).tolist())
            actual = set(assignment.tile_ids[assignment.gaussian_ids == i].tolist())
            assert actual == expected, f"gaussian {i} method {method}"


class TestMethodTightness:
    def test_ellipse_pairs_subset_of_boxes(self, projected, grid):
        ell = identify_tiles(projected, grid, BoundaryMethod.ELLIPSE)
        obb = identify_tiles(projected, grid, BoundaryMethod.OBB)
        aabb = identify_tiles(projected, grid, BoundaryMethod.AABB)
        ell_pairs = set(zip(ell.gaussian_ids.tolist(), ell.tile_ids.tolist()))
        obb_pairs = set(zip(obb.gaussian_ids.tolist(), obb.tile_ids.tolist()))
        aabb_pairs = set(zip(aabb.gaussian_ids.tolist(), aabb.tile_ids.tolist()))
        assert ell_pairs <= obb_pairs
        assert ell_pairs <= aabb_pairs

    def test_counters(self, projected, grid):
        aabb = identify_tiles(projected, grid, BoundaryMethod.AABB)
        ell = identify_tiles(projected, grid, BoundaryMethod.ELLIPSE)
        # AABB does not charge refinement tests; ellipse charges one per
        # candidate tile.
        assert aabb.num_boundary_tests == 0
        assert ell.num_boundary_tests == ell.num_candidate_tiles
        assert ell.num_pairs <= ell.num_candidate_tiles


class TestCoarserGridsNestPairs:
    def test_tile_hit_implies_group_hit(self, projected, camera):
        """Perfect alignment (Fig. 8b): a Gaussian intersecting a tile must
        intersect the enclosing larger cell under the same method."""
        fine = TileGrid(camera.width, camera.height, 8)
        coarse = TileGrid(camera.width, camera.height, 32)
        for method in BoundaryMethod:
            fa = identify_tiles(projected, fine, method)
            ca = identify_tiles(projected, coarse, method)
            coarse_pairs = set(zip(ca.gaussian_ids.tolist(), ca.tile_ids.tolist()))
            for g, t in zip(fa.gaussian_ids, fa.tile_ids):
                tx, ty = fine.tile_coords(int(t))
                group = coarse.tile_id(tx // 4, ty // 4)
                assert (int(g), int(group)) in coarse_pairs

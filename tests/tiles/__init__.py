"""Test package."""

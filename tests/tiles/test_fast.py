"""Equivalence tests: vectorised tile identification vs the reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.camera import Camera
from repro.gaussians.projection import project
from repro.tiles.boundary import BoundaryMethod
from repro.tiles.fast import identify_tiles_aabb_fast, identify_tiles_fast
from repro.tiles.grid import TileGrid
from repro.tiles.identify import identify_tiles
from tests.conftest import make_cloud


def _assert_equivalent(fast, ref):
    assert np.array_equal(fast.gaussian_ids, ref.gaussian_ids)
    assert np.array_equal(fast.tile_ids, ref.tile_ids)
    assert fast.num_candidate_tiles == ref.num_candidate_tiles
    assert fast.num_boundary_tests == ref.num_boundary_tests
    assert fast.num_gaussians == ref.num_gaussians


class TestEquivalence:
    @pytest.mark.parametrize("tile_size", [8, 16, 32, 64])
    def test_matches_reference(self, projected, camera, tile_size):
        grid = TileGrid(camera.width, camera.height, tile_size)
        _assert_equivalent(
            identify_tiles_aabb_fast(projected, grid),
            identify_tiles(projected, grid, BoundaryMethod.AABB),
        )

    def test_ragged_image(self, rng):
        camera = Camera(width=77, height=53, fx=70.0, fy=70.0)
        cloud = make_cloud(80, rng)
        proj = project(cloud, camera)
        grid = TileGrid(camera.width, camera.height, 16)
        _assert_equivalent(
            identify_tiles_aabb_fast(proj, grid),
            identify_tiles(proj, grid, BoundaryMethod.AABB),
        )

    def test_empty_projection(self, rng, camera):
        cloud = make_cloud(10, rng, depth_range=(-20.0, -5.0))
        proj = project(cloud, camera)
        grid = TileGrid(camera.width, camera.height, 16)
        fast = identify_tiles_aabb_fast(proj, grid)
        assert fast.num_pairs == 0

    @given(st.integers(0, 2**31 - 1), st.sampled_from([8, 16, 32]))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_property(self, seed, tile_size):
        rng = np.random.default_rng(seed)
        camera = Camera(width=96, height=64, fx=80.0, fy=80.0)
        cloud = make_cloud(
            30, rng, depth_range=(0.5, 30.0), spread=8.0, scale_range=(0.01, 1.5)
        )
        proj = project(cloud, camera)
        grid = TileGrid(camera.width, camera.height, tile_size)
        _assert_equivalent(
            identify_tiles_aabb_fast(proj, grid),
            identify_tiles(proj, grid, BoundaryMethod.AABB),
        )


class TestAllMethodsEquivalence:
    """identify_tiles_fast must match the reference for every method."""

    @pytest.mark.parametrize("method", list(BoundaryMethod))
    @pytest.mark.parametrize("tile_size", [8, 16, 64])
    def test_matches_reference(self, projected, camera, tile_size, method):
        grid = TileGrid(camera.width, camera.height, tile_size)
        _assert_equivalent(
            identify_tiles_fast(projected, grid, method),
            identify_tiles(projected, grid, method),
        )

    @pytest.mark.parametrize("method", list(BoundaryMethod))
    def test_ragged_image(self, rng, method):
        camera = Camera(width=77, height=53, fx=70.0, fy=70.0)
        cloud = make_cloud(80, rng)
        proj = project(cloud, camera)
        grid = TileGrid(camera.width, camera.height, 16)
        _assert_equivalent(
            identify_tiles_fast(proj, grid, method),
            identify_tiles(proj, grid, method),
        )

    @pytest.mark.parametrize("method", list(BoundaryMethod))
    def test_empty_projection(self, rng, camera, method):
        cloud = make_cloud(10, rng, depth_range=(-20.0, -5.0))
        proj = project(cloud, camera)
        grid = TileGrid(camera.width, camera.height, 16)
        fast = identify_tiles_fast(proj, grid, method)
        assert fast.num_pairs == 0
        assert fast.num_candidate_tiles == 0

    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from([8, 16, 32]),
        st.sampled_from(list(BoundaryMethod)),
    )
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, seed, tile_size, method):
        rng = np.random.default_rng(seed)
        camera = Camera(width=96, height=64, fx=80.0, fy=80.0)
        cloud = make_cloud(
            30, rng, depth_range=(0.5, 30.0), spread=8.0, scale_range=(0.01, 1.5)
        )
        proj = project(cloud, camera)
        grid = TileGrid(camera.width, camera.height, tile_size)
        _assert_equivalent(
            identify_tiles_fast(proj, grid, method),
            identify_tiles(proj, grid, method),
        )

"""Unit tests for the tile grid."""

import numpy as np
import pytest

from repro.tiles.grid import TileGrid


class TestGridShape:
    def test_exact_division(self):
        grid = TileGrid(64, 48, 16)
        assert grid.tiles_x == 4
        assert grid.tiles_y == 3
        assert grid.num_tiles == 12

    def test_ragged_division_rounds_up(self):
        grid = TileGrid(65, 49, 16)
        assert grid.tiles_x == 5
        assert grid.tiles_y == 4

    def test_tile_larger_than_image(self):
        grid = TileGrid(10, 10, 64)
        assert grid.num_tiles == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            TileGrid(0, 10, 8)
        with pytest.raises(ValueError):
            TileGrid(10, 10, 0)


class TestIndexing:
    def test_tile_id_roundtrip(self):
        grid = TileGrid(64, 48, 16)
        for tid in range(grid.num_tiles):
            tx, ty = grid.tile_coords(tid)
            assert grid.tile_id(tx, ty) == tid

    def test_row_major_order(self):
        grid = TileGrid(64, 48, 16)
        assert grid.tile_id(1, 0) == 1
        assert grid.tile_id(0, 1) == grid.tiles_x

    def test_tile_rect_interior(self):
        grid = TileGrid(64, 48, 16)
        assert grid.tile_rect(grid.tile_id(1, 1)) == (16.0, 16.0, 32.0, 32.0)

    def test_tile_rect_clipped_at_edge(self):
        grid = TileGrid(65, 49, 16)
        rect = grid.tile_rect(grid.tile_id(4, 3))
        assert rect == (64.0, 48.0, 65.0, 49.0)

    def test_tile_rects_vectorised_matches_scalar(self):
        grid = TileGrid(70, 50, 16)
        ids = np.arange(grid.num_tiles)
        rects = grid.tile_rects(ids)
        for tid in ids:
            assert tuple(rects[tid]) == grid.tile_rect(int(tid))

    def test_rects_tile_the_image_exactly(self):
        grid = TileGrid(70, 50, 16)
        rects = grid.tile_rects(np.arange(grid.num_tiles))
        area = np.sum((rects[:, 2] - rects[:, 0]) * (rects[:, 3] - rects[:, 1]))
        assert area == 70 * 50


class TestPixels:
    def test_tile_pixels_centres(self):
        grid = TileGrid(32, 32, 16)
        px, py = grid.tile_pixels(0)
        assert px.shape == (16, 16)
        assert px[0, 0] == 0.5
        assert py[0, 0] == 0.5
        assert px[0, 15] == 15.5

    def test_clipped_tile_pixels(self):
        grid = TileGrid(20, 20, 16)
        px, py = grid.tile_pixels(grid.tile_id(1, 1))
        assert px.shape == (4, 4)
        assert px[0, 0] == 16.5

    def test_num_pixels_in_tile(self):
        grid = TileGrid(20, 20, 16)
        assert grid.num_pixels_in_tile(0) == 256
        assert grid.num_pixels_in_tile(grid.tile_id(1, 1)) == 16

    def test_total_pixels(self):
        grid = TileGrid(37, 23, 8)
        total = sum(grid.num_pixels_in_tile(t) for t in range(grid.num_tiles))
        assert total == 37 * 23


class TestRanges:
    def test_range_for_interior_rect(self):
        grid = TileGrid(64, 64, 16)
        assert grid.tile_range_for_rect(17.0, 17.0, 30.0, 30.0) == (1, 1, 2, 2)

    def test_range_spanning_tiles(self):
        grid = TileGrid(64, 64, 16)
        tx0, ty0, tx1, ty1 = grid.tile_range_for_rect(10.0, 10.0, 40.0, 20.0)
        assert (tx0, ty0, tx1, ty1) == (0, 0, 3, 2)

    def test_range_clamped_to_image(self):
        grid = TileGrid(64, 64, 16)
        assert grid.tile_range_for_rect(-100.0, -100.0, 1000.0, 1000.0) == (0, 0, 4, 4)

    def test_range_fully_outside_is_empty(self):
        grid = TileGrid(64, 64, 16)
        tx0, ty0, tx1, ty1 = grid.tile_range_for_rect(100.0, 0.0, 120.0, 10.0)
        assert tx0 >= tx1

    def test_tiles_in_range(self):
        grid = TileGrid(64, 64, 16)
        tiles = grid.tiles_in_range(1, 1, 3, 3)
        assert set(tiles.tolist()) == {5, 6, 9, 10}

    def test_tiles_in_empty_range(self):
        grid = TileGrid(64, 64, 16)
        assert grid.tiles_in_range(2, 2, 2, 4).size == 0

"""Edge-case and failure-injection tests across the whole stack.

Degenerate inputs that production renderers must survive: empty views,
single Gaussians, image-filling footprints, single-tile images, extreme
opacities, cameras staring at nothing.
"""

import numpy as np
import pytest

from repro.core.pipeline import GSTGRenderer
from repro.gaussians.camera import Camera
from repro.gaussians.cloud import GaussianCloud
from repro.gaussians.projection import project
from repro.raster.renderer import BaselineRenderer
from repro.tiles.boundary import BoundaryMethod
from repro.tiles.grid import TileGrid
from repro.tiles.identify import identify_tiles
from tests.conftest import make_cloud


def _single(position, scale, opacity=0.9):
    return GaussianCloud(
        positions=np.array([position], dtype=float),
        scales=np.full((1, 3), scale),
        rotations=np.array([[1.0, 0.0, 0.0, 0.0]]),
        opacities=np.array([opacity]),
        sh_coeffs=np.zeros((1, 1, 3)),
    )


class TestDegenerateViews:
    def test_everything_behind_camera(self, camera):
        cloud = _single([0.0, 0.0, -10.0], 0.1)
        for renderer in (
            BaselineRenderer(16, BoundaryMethod.ELLIPSE),
            GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE),
        ):
            result = renderer.render(cloud, camera)
            assert np.allclose(result.image, 0.0)
            assert result.stats.raster.num_alpha_computations == 0

    def test_single_gaussian_renders_both_pipelines(self, camera):
        cloud = _single([0.0, 0.0, 5.0], 0.2)
        base = BaselineRenderer(16, BoundaryMethod.ELLIPSE).render(cloud, camera)
        ours = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE).render(cloud, camera)
        assert np.array_equal(base.image, ours.image)
        assert base.image.max() > 0

    def test_gaussian_covering_whole_image(self, camera):
        """A footprint larger than the image must hit every tile and
        still render identically."""
        cloud = _single([0.0, 0.0, 2.0], 3.0)
        proj = project(cloud, camera)
        grid = TileGrid(camera.width, camera.height, 16)
        assignment = identify_tiles(proj, grid, BoundaryMethod.ELLIPSE)
        assert assignment.num_pairs == grid.num_tiles
        base = BaselineRenderer(16, BoundaryMethod.ELLIPSE).render(cloud, camera)
        ours = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE).render(cloud, camera)
        assert np.array_equal(base.image, ours.image)

    def test_image_smaller_than_one_group(self, rng):
        camera = Camera(width=40, height=30, fx=40.0, fy=40.0)
        cloud = make_cloud(30, rng, spread=1.5, depth_range=(2.0, 8.0))
        base = BaselineRenderer(16, BoundaryMethod.ELLIPSE).render(cloud, camera)
        ours = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE).render(cloud, camera)
        assert np.array_equal(base.image, ours.image)

    def test_one_pixel_tiles(self, rng):
        camera = Camera(width=24, height=18, fx=30.0, fy=30.0)
        cloud = make_cloud(15, rng, spread=1.0, depth_range=(2.0, 6.0))
        base = BaselineRenderer(1, BoundaryMethod.AABB).render(cloud, camera)
        ours = GSTGRenderer(1, 4, BoundaryMethod.AABB).render(cloud, camera)
        assert np.array_equal(base.image, ours.image)

    def test_tile_equals_group(self, rng, camera):
        """group == tile degenerates to the baseline exactly (1-bit
        bitmasks, one tile per group)."""
        cloud = make_cloud(40, rng)
        base = BaselineRenderer(16, BoundaryMethod.OBB).render(cloud, camera)
        ours = GSTGRenderer(16, 16, BoundaryMethod.OBB).render(cloud, camera)
        assert np.array_equal(base.image, ours.image)
        assert ours.stats.bitmask_bits == 1


class TestExtremeParameters:
    def test_fully_opaque_stack_terminates_early(self, camera):
        positions = [[0.0, 0.0, z] for z in np.linspace(2, 20, 50)]
        cloud = GaussianCloud(
            positions=np.array(positions),
            scales=np.full((50, 3), 1.0),
            rotations=np.tile([[1.0, 0, 0, 0]], (50, 1)),
            opacities=np.full(50, 1.0),
            sh_coeffs=np.zeros((50, 1, 3)),
        )
        result = BaselineRenderer(16, BoundaryMethod.ELLIPSE).render(cloud, camera)
        # Early exit must fire: far Gaussians never reach alpha blending
        # at the image centre.
        assert result.stats.raster.num_early_exit_pixels > 0

    def test_minimum_opacity_survives(self, camera):
        cloud = _single([0.0, 0.0, 5.0], 0.3, opacity=1.0 / 255.0)
        result = BaselineRenderer(16, BoundaryMethod.ELLIPSE).render(cloud, camera)
        assert result.stats.preprocess.num_visible_gaussians == 1

    def test_tiny_gaussian_hits_one_tile(self, camera):
        # Project to a tile centre: the footprint floor (the 0.3 px blur)
        # keeps the radius under 2 px, so it must stay inside one tile.
        x_cam = (40.0 - camera.cx) / camera.fx * 5.0
        y_cam = (28.0 - camera.cy) / camera.fy * 5.0
        cloud = _single([x_cam, y_cam, 5.0], 1e-4)
        proj = project(cloud, camera)
        grid = TileGrid(camera.width, camera.height, 16)
        assignment = identify_tiles(proj, grid, BoundaryMethod.ELLIPSE)
        assert assignment.num_pairs == 1

    def test_far_depth_extremes(self, camera):
        near_far = GaussianCloud(
            positions=np.array([[0.0, 0.0, camera.near * 1.01],
                                [0.0, 0.0, camera.far * 0.99]]),
            scales=np.full((2, 3), 0.05),
            rotations=np.tile([[1.0, 0, 0, 0]], (2, 1)),
            opacities=np.array([0.5, 0.5]),
            sh_coeffs=np.zeros((2, 1, 3)),
        )
        result = BaselineRenderer(16, BoundaryMethod.AABB).render(near_far, camera)
        assert result.stats.preprocess.num_visible_gaussians == 2
        assert np.all(np.isfinite(result.image))

"""Tests for the gateway wire protocol: framing and payload codecs.

The load-bearing property is exactness: a cloud, camera, image or
stats object pushed through ``encode_* -> bytes -> decode_*`` must come
back *equal* — bit-for-bit for arrays — because the serving layer's
bit-identical guarantee has to survive the socket.
"""

import asyncio
import io

import numpy as np
import pytest

from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.experiments.shm_cache import cloud_fingerprint
from repro.gaussians.camera import Camera, look_at
from repro.serve import protocol
from repro.serve.protocol import (
    ErrorCode,
    MessageType,
    ProtocolError,
    decode_camera,
    decode_cloud,
    decode_result_frame,
    decode_stats,
    encode_camera,
    encode_cloud,
    encode_frame,
    encode_result_frame,
    encode_stats,
    read_frame,
    read_frame_from,
)
from repro.tiles.boundary import BoundaryMethod
from tests.conftest import make_cloud


def parse(payload: bytes) -> "list[protocol.Frame]":
    """Decode a byte string of concatenated frames (sync reader)."""
    stream = io.BytesIO(payload)
    frames = []
    while True:
        frame = read_frame_from(stream)
        if frame is None:
            return frames
        frames.append(frame)


def parse_async(payload: bytes) -> "list[protocol.Frame]":
    """Decode the same bytes through the asyncio reader."""

    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        frames = []
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return frames
            frames.append(frame)

    return asyncio.run(main())


class TestFraming:
    def test_round_trip_both_readers(self):
        payload = encode_frame(
            MessageType.RENDER, {"request_id": 7, "x": [1, 2.5]}, b"blobby"
        ) + encode_frame(MessageType.BYE)
        for frames in (parse(payload), parse_async(payload)):
            assert [f.type for f in frames] == [
                MessageType.RENDER,
                MessageType.BYE,
            ]
            assert frames[0].header == {"request_id": 7, "x": [1, 2.5]}
            assert frames[0].blob == b"blobby"
            assert frames[1].header == {} and frames[1].blob == b""

    def test_clean_eof_returns_none(self):
        assert parse(b"") == []

    def test_eof_mid_frame_is_fatal(self):
        payload = encode_frame(MessageType.STATS)
        with pytest.raises(ProtocolError) as excinfo:
            parse(payload[:-1])
        assert excinfo.value.fatal

    def test_oversized_length_is_fatal(self):
        import struct

        with pytest.raises(ProtocolError) as excinfo:
            parse(struct.pack("!I", protocol.MAX_FRAME_BYTES + 1) + b"x" * 16)
        assert excinfo.value.fatal
        assert excinfo.value.code == ErrorCode.FRAME_TOO_LARGE

    def test_bad_json_header_is_recoverable(self):
        import struct

        header = b"{not json"
        payload = struct.pack("!BI", int(MessageType.STATS), len(header)) + header
        wire = struct.pack("!I", len(payload)) + payload
        with pytest.raises(ProtocolError) as excinfo:
            parse(wire)
        assert not excinfo.value.fatal

    def test_unknown_type_is_recoverable(self):
        import struct

        payload = struct.pack("!BI", 250, 2) + b"{}"
        wire = struct.pack("!I", len(payload)) + payload
        with pytest.raises(ProtocolError) as excinfo:
            parse(wire)
        assert not excinfo.value.fatal

    def test_nan_rejected_at_encode_time(self):
        with pytest.raises(ValueError):
            encode_frame(MessageType.STATS, {"x": float("nan")})

    def test_prefix_split_across_segments(self):
        """A length prefix arriving one byte at a time must not be
        mistaken for EOF (readexactly semantics)."""

        async def main():
            reader = asyncio.StreamReader()
            wire = encode_frame(MessageType.STATS)

            async def feed():
                for i in range(len(wire)):
                    reader.feed_data(wire[i : i + 1])
                    await asyncio.sleep(0)
                reader.feed_eof()

            feeder = asyncio.ensure_future(feed())
            frame = await read_frame(reader)
            await feeder
            return frame

        frame = asyncio.run(main())
        assert frame.type is MessageType.STATS


class TestPayloadCodecs:
    def test_cloud_round_trip_is_bit_exact(self):
        cloud = make_cloud(50, np.random.default_rng(11))
        decoded = decode_cloud(*encode_cloud(cloud))
        for name in ("positions", "scales", "rotations", "opacities", "sh_coeffs"):
            assert np.array_equal(getattr(cloud, name), getattr(decoded, name))
        assert cloud_fingerprint(cloud) == cloud_fingerprint(decoded)

    def test_cloud_blob_length_mismatch(self):
        cloud = make_cloud(10, np.random.default_rng(12))
        header, blob = encode_cloud(cloud)
        with pytest.raises(ProtocolError):
            decode_cloud(header, blob[:-8])
        with pytest.raises(ProtocolError):
            decode_cloud(header, blob + b"\x00" * 8)

    def test_cloud_malformed_specs_are_protocol_errors(self):
        """Any malformed-but-framed SCENE header must raise ProtocolError
        (never an uncaught AttributeError/ValueError that would kill the
        gateway connection without its 400 reply)."""
        cloud = make_cloud(10, np.random.default_rng(17))
        header, blob = encode_cloud(cloud)
        # Specs that are not objects.
        with pytest.raises(ProtocolError):
            decode_cloud({"arrays": ["positions"] * 5}, blob)
        # Negative shape dimensions.
        bad = {"arrays": [dict(spec) for spec in header["arrays"]]}
        bad["arrays"][0]["shape"] = [-1, 3]
        with pytest.raises(ProtocolError):
            decode_cloud(bad, blob)
        # Non-numeric shape entries.
        bad["arrays"][0]["shape"] = ["ten", 3]
        with pytest.raises(ProtocolError):
            decode_cloud(bad, blob)
        # Unknown dtype string.
        bad["arrays"][0]["shape"] = header["arrays"][0]["shape"]
        bad["arrays"][0]["dtype"] = "not-a-dtype"
        with pytest.raises(ProtocolError):
            decode_cloud(bad, blob)

    def test_cloud_invalid_parameters(self):
        cloud = make_cloud(10, np.random.default_rng(13))
        header, blob = encode_cloud(cloud)
        # Corrupt the opacities (beyond [0, 1]) in the blob.
        bad = bytearray(blob)
        offset = sum(
            np.prod(spec["shape"], dtype=np.int64) * 8
            for spec in header["arrays"][:3]
        )
        bad[offset : offset + 8] = np.float64(7.5).tobytes()
        with pytest.raises(ProtocolError):
            decode_cloud(header, bytes(bad))

    def test_camera_round_trip_is_exact(self):
        camera = look_at(
            eye=np.array([1.37, -2.11, 0.61]),
            target=np.zeros(3),
            width=123,
            height=77,
            fov_y_degrees=51.3,
            near=0.313,
            far=971.7,
        )
        decoded = decode_camera(encode_camera(camera))
        assert decoded.width == camera.width and decoded.height == camera.height
        assert decoded.fx == camera.fx and decoded.fy == camera.fy
        assert decoded.near == camera.near and decoded.far == camera.far
        assert np.array_equal(decoded.rotation, camera.rotation)
        assert np.array_equal(decoded.translation, camera.translation)

    def test_camera_missing_field(self):
        header = encode_camera(Camera(width=32, height=32, fx=30.0, fy=30.0))
        del header["fx"]
        with pytest.raises(ProtocolError):
            decode_camera(header)

    def test_stats_round_trip_equality(self):
        cloud = make_cloud(40, np.random.default_rng(14))
        camera = Camera(width=96, height=64, fx=80.0, fy=80.0)
        renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
        stats = RenderEngine(renderer).render(cloud, camera).stats
        decoded = decode_stats(encode_stats(stats))
        assert decoded == stats  # dataclass equality: every counter exact

    def test_result_frame_round_trip(self):
        cloud = make_cloud(40, np.random.default_rng(15))
        camera = Camera(width=96, height=64, fx=80.0, fy=80.0)
        renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
        result = RenderEngine(renderer).render(cloud, camera)
        (frame,) = parse(encode_result_frame(9, 3, result))
        request_id, index, decoded = decode_result_frame(frame)
        assert (request_id, index) == (9, 3)
        assert np.array_equal(decoded.image, result.image)
        assert decoded.stats == result.stats
        assert decoded.projected is None and decoded.assignment is None
        assert not decoded.image.flags.writeable

    def test_result_frame_blob_size_check(self):
        cloud = make_cloud(10, np.random.default_rng(16))
        camera = Camera(width=32, height=32, fx=30.0, fy=30.0)
        renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
        result = RenderEngine(renderer).render(cloud, camera)
        (frame,) = parse(encode_result_frame(1, 0, result))
        frame.blob = frame.blob[:-4]
        with pytest.raises(ProtocolError):
            decode_result_frame(frame)

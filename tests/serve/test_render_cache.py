"""Tests for the shared-memory render cache."""

import numpy as np
import pytest

from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.gaussians.camera import Camera
from repro.raster.renderer import BaselineRenderer
from repro.serve.render_cache import SharedRenderCache, renderer_key
from repro.tiles.boundary import BoundaryMethod
from tests.conftest import make_cloud


@pytest.fixture
def scene():
    rng = np.random.default_rng(17)
    camera = Camera(width=96, height=64, fx=90.0, fy=90.0)
    return make_cloud(40, rng), camera


@pytest.fixture
def renderer():
    return GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)


class TestRendererKey:
    def test_equal_configs_share_keys(self):
        a = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
        b = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
        assert renderer_key(a) == renderer_key(b)

    def test_different_configs_differ(self):
        base = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
        for other in (
            GSTGRenderer(16, 32, BoundaryMethod.ELLIPSE),
            GSTGRenderer(16, 64, BoundaryMethod.AABB),
            GSTGRenderer(8, 64, BoundaryMethod.ELLIPSE),
            GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE, BoundaryMethod.AABB),
            BaselineRenderer(16, BoundaryMethod.ELLIPSE),
        ):
            assert renderer_key(base) != renderer_key(other)

    def test_key_is_hashable(self, renderer):
        hash(renderer_key(renderer))


class TestRoundTrip:
    def test_frame_and_stats_bit_identical(self, scene, renderer):
        cloud, camera = scene
        reference = renderer.render(cloud, camera)
        with SharedRenderCache() as cache:
            assert cache.get(cloud, camera, renderer) is None
            cache.put(cloud, camera, renderer, reference)
            loaded = cache.get(cloud, camera, renderer)
            assert loaded is not None
            assert np.array_equal(loaded.image, reference.image)
            assert loaded.image.dtype == reference.image.dtype
            assert loaded.stats == reference.stats
            assert loaded.projected is None and loaded.assignment is None

    def test_loaded_image_read_only(self, scene, renderer):
        cloud, camera = scene
        with SharedRenderCache() as cache:
            cache.put(cloud, camera, renderer, renderer.render(cloud, camera))
            loaded = cache.get(cloud, camera, renderer)
            with pytest.raises(ValueError):
                loaded.image[0, 0, 0] = 1.0

    def test_render_helper_hits_second_time(self, scene, renderer):
        cloud, camera = scene
        engine = RenderEngine(renderer)
        with SharedRenderCache() as cache:
            first = cache.render(engine, cloud, camera)
            second = cache.render(engine, cloud, camera)
            assert np.array_equal(first.image, second.image)
            stats = cache.stats()
            assert stats["hits"] == 1
            assert stats["misses"] == 1
            assert stats["stores"] == 1

    def test_distinct_renderers_distinct_entries(self, scene):
        cloud, camera = scene
        a = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
        b = BaselineRenderer(16, BoundaryMethod.ELLIPSE)
        with SharedRenderCache() as cache:
            cache.put(cloud, camera, a, a.render(cloud, camera))
            assert cache.get(cloud, camera, b) is None
            cache.put(cloud, camera, b, b.render(cloud, camera))
            assert len(cache) == 2
            hit = cache.get(cloud, camera, a)
            ref = a.render(cloud, camera)
            assert np.array_equal(hit.image, ref.image)

    def test_eviction_bounds_entries(self, scene, renderer):
        cloud, _ = scene
        with SharedRenderCache(max_entries=2) as cache:
            for focal in (60.0, 70.0, 80.0):
                camera = Camera(width=96, height=64, fx=focal, fy=focal)
                cache.put(cloud, camera, renderer, renderer.render(cloud, camera))
            assert len(cache) == 2


class TestLifecycle:
    def test_close_unlinks_segments(self, scene, renderer):
        from multiprocessing import shared_memory

        cloud, camera = scene
        cache = SharedRenderCache()
        cache.put(cloud, camera, renderer, renderer.render(cloud, camera))
        names = [entry[0] for entry in cache._index.values()]
        assert names
        cache.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        cache.close()  # idempotent

    def test_gc_fallback_unlinks_segments(self, scene, renderer):
        import gc
        from multiprocessing import shared_memory

        cloud, camera = scene
        cache = SharedRenderCache()
        cache.put(cloud, camera, renderer, renderer.render(cloud, camera))
        names = [entry[0] for entry in cache._index.values()]
        del cache
        gc.collect()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestEngineIntegration:
    def test_render_trajectory_store_serial(self, scene, renderer):
        cloud, _ = scene
        cameras = [
            Camera(width=96, height=64, fx=85.0 + i, fy=85.0 + i)
            for i in range(3)
        ]
        reference = RenderEngine(renderer).render_trajectory(cloud, cameras)
        with SharedRenderCache() as store:
            engine = RenderEngine(renderer)
            first = engine.render_trajectory(cloud, cameras, render_store=store)
            assert store.stats()["stores"] == len(cameras)
            second = engine.render_trajectory(cloud, cameras, render_store=store)
            assert store.stats()["stores"] == len(cameras)  # nothing re-rendered
            assert store.stats()["hits"] >= len(cameras)
        for result, ref in zip(first.results, reference.results):
            assert np.array_equal(result.image, ref.image)
            assert result.stats == ref.stats
        for result, ref in zip(second.results, reference.results):
            assert np.array_equal(result.image, ref.image)
            assert result.stats == ref.stats
        assert second.stats == reference.stats

    def test_render_trajectory_store_process_workers(self, scene, renderer):
        """The store pickles into pool workers; a second pool re-renders
        nothing and still returns bit-identical frames."""
        cloud, _ = scene
        cameras = [
            Camera(width=96, height=64, fx=85.0 + i, fy=85.0 + i)
            for i in range(4)
        ]
        reference = RenderEngine(renderer).render_trajectory(cloud, cameras)
        with SharedRenderCache() as store:
            engine = RenderEngine(renderer)
            engine.render_trajectory(
                cloud, cameras, workers=2, render_store=store
            )
            stores_after_first = store.stats()["stores"]
            assert stores_after_first == len(cameras)
            second = engine.render_trajectory(
                cloud, cameras, workers=2, render_store=store
            )
            assert store.stats()["stores"] == stores_after_first
        for result, ref in zip(second.results, reference.results):
            assert np.array_equal(result.image, ref.image)
            assert result.stats == ref.stats

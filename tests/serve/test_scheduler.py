"""Tests for the micro-batching scheduler.

Plain ``asyncio.run`` drivers (no async test plugin required), so the
tier-1 suite runs these everywhere the repo's base dependencies do.
"""

import asyncio
import threading

import pytest

from repro.serve.scheduler import MicroBatcher


def make_recorder():
    batches = []
    lock = threading.Lock()

    def run_batch(key, items):
        with lock:
            batches.append((key, list(items)))
        return [(key, item) for item in items]

    return batches, run_batch


class TestBatching:
    def test_full_batch_flushes_at_size(self):
        batches, run_batch = make_recorder()

        async def main():
            batcher = MicroBatcher(run_batch, max_batch_size=4, max_wait=60.0)
            results = await asyncio.gather(
                *(batcher.submit("lane", i) for i in range(8))
            )
            await batcher.drain()
            return results

        results = asyncio.run(main())
        assert results == [("lane", i) for i in range(8)]
        # max_wait is effectively infinite: only size-triggered flushes.
        assert [len(items) for _, items in batches] == [4, 4]

    def test_timer_flushes_partial_batch(self):
        batches, run_batch = make_recorder()

        async def main():
            batcher = MicroBatcher(run_batch, max_batch_size=100, max_wait=0.01)
            return await asyncio.gather(
                *(batcher.submit("lane", i) for i in range(3))
            )

        results = asyncio.run(main())
        assert results == [("lane", i) for i in range(3)]
        assert [len(items) for _, items in batches] == [3]

    def test_lanes_do_not_mix(self):
        batches, run_batch = make_recorder()

        async def main():
            batcher = MicroBatcher(run_batch, max_batch_size=2, max_wait=0.01)
            return await asyncio.gather(
                batcher.submit("a", 1),
                batcher.submit("b", 2),
                batcher.submit("a", 3),
                batcher.submit("b", 4),
            )

        results = asyncio.run(main())
        assert results == [("a", 1), ("b", 2), ("a", 3), ("b", 4)]
        for key, items in batches:
            assert all(isinstance(i, int) for i in items)
        assert sorted(key for key, _ in batches) == ["a", "b"]

    def test_stats_accounting(self):
        _, run_batch = make_recorder()

        async def main():
            batcher = MicroBatcher(run_batch, max_batch_size=2, max_wait=0.01)
            await asyncio.gather(*(batcher.submit("lane", i) for i in range(5)))
            await batcher.drain()
            return batcher.stats

        stats = asyncio.run(main())
        assert stats.requests == 5
        assert stats.batched_items == 5
        assert stats.batches == 3  # 2 + 2 + timer-flushed 1
        assert stats.max_batch == 2
        assert stats.mean_batch == pytest.approx(5 / 3)


class TestCancellation:
    def test_cancelled_requests_drop_before_flush(self):
        batches, run_batch = make_recorder()

        async def main():
            batcher = MicroBatcher(run_batch, max_batch_size=100, max_wait=0.05)
            keep = asyncio.ensure_future(batcher.submit("lane", "keep"))
            drop = asyncio.ensure_future(batcher.submit("lane", "drop"))
            await asyncio.sleep(0)  # both pending, not yet flushed
            drop.cancel()
            result = await keep
            with pytest.raises(asyncio.CancelledError):
                await drop
            await batcher.drain()
            return result, batcher.stats

        result, stats = asyncio.run(main())
        assert result == ("lane", "keep")
        assert stats.cancelled == 1
        assert [items for _, items in batches] == [["keep"]]

    def test_all_cancelled_lane_runs_nothing(self):
        batches, run_batch = make_recorder()

        async def main():
            batcher = MicroBatcher(run_batch, max_batch_size=100, max_wait=0.02)
            futures = [
                asyncio.ensure_future(batcher.submit("lane", i)) for i in range(3)
            ]
            await asyncio.sleep(0)
            for future in futures:
                future.cancel()
            await asyncio.sleep(0.05)  # let the timer fire
            await batcher.drain()

        asyncio.run(main())
        assert batches == []


class TestErrors:
    def test_batch_exception_propagates_to_all_waiters(self):
        def run_batch(key, items):
            raise RuntimeError("engine exploded")

        async def main():
            batcher = MicroBatcher(run_batch, max_batch_size=2, max_wait=0.01)
            results = await asyncio.gather(
                batcher.submit("lane", 1),
                batcher.submit("lane", 2),
                return_exceptions=True,
            )
            await batcher.drain()
            return results

        results = asyncio.run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda k, i: i, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda k, i: i, max_wait=-1.0)

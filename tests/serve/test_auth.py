"""Tests for the wire protocol's shared-secret AUTH handshake.

The contract: a keyed server announces ``auth_required`` in HELLO and
accepts nothing before a matching AUTH frame; wrong or missing tokens
get a 401 and the connection dies; the comparison is constant-time
(``hmac.compare_digest``); the token reaches every entry point through
one environment knob.  The router applies the same handshake at the
cluster edge, with an independently keyed backend side.
"""

import asyncio

import numpy as np
import pytest

from repro.cluster import BackendSpec, ClusterMap, ShardRouter
from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.gaussians.camera import Camera
from repro.serve import (
    AUTH_TOKEN_ENV,
    AsyncGatewayClient,
    GatewayClient,
    GatewayError,
    RenderGateway,
    RenderService,
    resolve_auth_token,
    token_matches,
)
from repro.serve import protocol
from repro.serve.protocol import ErrorCode, MessageType
from repro.tiles.boundary import BoundaryMethod
from tests.conftest import make_cloud

TOKEN = "correct-horse-battery-staple"


@pytest.fixture(scope="module")
def renderer():
    return GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(43)
    cloud = make_cloud(25, rng)
    camera = Camera(width=64, height=48, fx=60.0, fy=60.0)
    return cloud, camera


def run_with_gateway(renderer, body, **gateway_kwargs):
    async def main():
        async with RenderService(
            renderer, max_batch_size=4, max_wait=0.002
        ) as service:
            gateway = RenderGateway(service, **gateway_kwargs)
            await gateway.start()
            try:
                return await body(gateway)
            finally:
                await gateway.close()

    return asyncio.run(main())


class TestHelpers:
    def test_token_matches_is_exact(self):
        assert token_matches("abc", "abc")
        assert not token_matches("abc", "abd")
        assert not token_matches("abc", "abcd")
        assert not token_matches("abc", "")

    def test_token_matches_rejects_non_strings_without_raising(self):
        assert not token_matches("abc", None)
        assert not token_matches("abc", 42)
        assert not token_matches("abc", ["abc"])

    def test_resolve_auth_token(self, monkeypatch):
        monkeypatch.delenv(AUTH_TOKEN_ENV, raising=False)
        assert resolve_auth_token(None) is None
        assert resolve_auth_token("x") == "x"
        monkeypatch.setenv(AUTH_TOKEN_ENV, "from-env")
        assert resolve_auth_token(None) == "from-env"
        assert resolve_auth_token("explicit") == "explicit"
        # An explicit empty string means "explicitly unauthenticated".
        assert resolve_auth_token("") is None
        monkeypatch.setenv(AUTH_TOKEN_ENV, "")
        assert resolve_auth_token(None) is None


class TestGatewayAuth:
    def test_correct_token_serves_bit_identical(self, scene, renderer):
        cloud, camera = scene

        async def body(gateway):
            assert gateway.auth_token == TOKEN
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port, auth_token=TOKEN
            )
            try:
                assert client.hello["auth_required"] is True
                return await client.render_frame(cloud, camera)
            finally:
                await client.close()

        result = run_with_gateway(renderer, body, auth_token=TOKEN)
        direct = RenderEngine(renderer).render(cloud, camera)
        assert np.array_equal(result.image, direct.image)

    def test_wrong_token_gets_401_and_disconnect(self, scene, renderer):
        cloud, camera = scene

        async def body(gateway):
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port, auth_token="wrong"
            )
            try:
                with pytest.raises(GatewayError) as excinfo:
                    await client.render_frame(cloud, camera)
                return excinfo.value.code, gateway.stats.auth_failures
            finally:
                await client.close()

        code, auth_failures = run_with_gateway(
            renderer, body, auth_token=TOKEN
        )
        assert code == int(ErrorCode.UNAUTHORIZED)
        assert auth_failures == 1

    def test_missing_token_fails_fast_client_side(self, scene, renderer):
        async def body(gateway):
            with pytest.raises(GatewayError) as excinfo:
                await AsyncGatewayClient.connect(
                    "127.0.0.1", gateway.tcp_port
                )
            return excinfo.value.code

        code = run_with_gateway(renderer, body, auth_token=TOKEN)
        assert code == int(ErrorCode.UNAUTHORIZED)

    def test_request_before_auth_is_refused(self, scene, renderer):
        """A keyed server treats any first frame that is not AUTH as an
        auth failure — no request smuggling past the handshake."""

        async def body(gateway):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.tcp_port
            )
            await protocol.read_frame(reader)  # HELLO
            writer.write(protocol.encode_frame(MessageType.STATS))
            await writer.drain()
            error = await protocol.read_frame(reader)
            rest = await reader.read()
            writer.close()
            await writer.wait_closed()
            return error, rest

        error, rest = run_with_gateway(renderer, body, auth_token=TOKEN)
        assert error.type is MessageType.ERROR
        assert error.header["code"] == int(ErrorCode.UNAUTHORIZED)
        assert rest == b""  # the server closed the connection

    def test_blocking_client_auth(self, scene, renderer):
        cloud, camera = scene

        async def body(gateway):
            def sync_work():
                with GatewayClient(
                    "127.0.0.1", gateway.tcp_port, auth_token=TOKEN
                ) as client:
                    good = client.render_frame(cloud, camera)
                try:
                    GatewayClient("127.0.0.1", gateway.tcp_port)
                except GatewayError as exc:
                    missing_code = exc.code
                with GatewayClient(
                    "127.0.0.1", gateway.tcp_port, auth_token="nope"
                ) as client:
                    try:
                        client.render_frame(cloud, camera)
                        wrong_code = None
                    except GatewayError as exc:
                        wrong_code = exc.code
                return good, missing_code, wrong_code

            return await asyncio.get_running_loop().run_in_executor(
                None, sync_work
            )

        good, missing_code, wrong_code = run_with_gateway(
            renderer, body, auth_token=TOKEN
        )
        direct = RenderEngine(renderer).render(cloud, camera)
        assert np.array_equal(good.image, direct.image)
        assert missing_code == int(ErrorCode.UNAUTHORIZED)
        assert wrong_code == int(ErrorCode.UNAUTHORIZED)

    def test_env_knob_keys_gateway_and_client(
        self, scene, renderer, monkeypatch
    ):
        cloud, camera = scene
        monkeypatch.setenv(AUTH_TOKEN_ENV, "env-token")

        async def body(gateway):
            assert gateway.auth_token == "env-token"
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port  # token resolved from env
            )
            try:
                return await client.render_frame(cloud, camera)
            finally:
                await client.close()

        result = run_with_gateway(renderer, body)  # gateway keys from env
        direct = RenderEngine(renderer).render(cloud, camera)
        assert np.array_equal(result.image, direct.image)

    def test_unsolicited_auth_on_unkeyed_gateway_is_ignored(
        self, scene, renderer, monkeypatch
    ):
        monkeypatch.delenv(AUTH_TOKEN_ENV, raising=False)
        cloud, camera = scene

        async def body(gateway):
            assert gateway.auth_token is None
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port, auth_token="spurious"
            )
            try:
                return await client.render_frame(cloud, camera)
            finally:
                await client.close()

        result = run_with_gateway(renderer, body)
        direct = RenderEngine(renderer).render(cloud, camera)
        assert np.array_equal(result.image, direct.image)


class TestRouterAuth:
    def test_router_edge_and_backend_tokens_are_independent(
        self, scene, renderer
    ):
        """Clients key to the router with one secret while the router
        keys to the backends with another — the fleet secret never
        reaches clients."""
        cloud, camera = scene

        async def main():
            async with RenderService(
                renderer, max_batch_size=4, max_wait=0.002
            ) as service:
                gateway = RenderGateway(service, auth_token="backend-secret")
                await gateway.start()
                cluster_map = ClusterMap(
                    [BackendSpec("b0", "127.0.0.1", gateway.tcp_port)]
                )
                router = ShardRouter(
                    cluster_map,
                    auth_token="client-secret",
                    backend_auth_token="backend-secret",
                )
                await router.start()
                try:
                    with pytest.raises(GatewayError):
                        await AsyncGatewayClient.connect(
                            "127.0.0.1", router.tcp_port
                        )
                    client = await AsyncGatewayClient.connect(
                        "127.0.0.1", router.tcp_port,
                        auth_token="client-secret",
                    )
                    try:
                        return (
                            await client.render_frame(cloud, camera),
                            router.stats.auth_failures,
                        )
                    finally:
                        await client.close()
                finally:
                    await router.close()
                    await gateway.close()

        result, auth_failures = asyncio.run(main())
        direct = RenderEngine(renderer).render(cloud, camera)
        assert np.array_equal(result.image, direct.image)
        assert auth_failures == 0  # the tokenless connect failed client-side

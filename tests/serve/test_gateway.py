"""Tests for the network render gateway.

The acceptance property: a trajectory streamed over a **real localhost
TCP socket** is bit-identical to direct ``RenderEngine.render`` output.
The failure modes around it: a client disconnecting mid-stream cancels
its service request, malformed frames get error responses without
killing the server, admission control rejects with 429 frames at
``max_pending``, and the HTTP adapter serves one-shot renders.

Plain ``asyncio.run`` drivers — no async test plugin required.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.gaussians.camera import Camera
from repro.serve import (
    AsyncGatewayClient,
    GatewayClient,
    GatewayError,
    RenderGateway,
    RenderService,
    run_clients,
    verify_streamed_images,
)
from repro.serve import protocol
from repro.serve.protocol import ErrorCode, MessageType
from repro.tiles.boundary import BoundaryMethod
from tests.conftest import make_cloud


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(31)
    cloud = make_cloud(40, rng)
    cameras = [
        Camera(width=96, height=64, fx=80.0 + i, fy=80.0 + i) for i in range(6)
    ]
    return cloud, cameras


@pytest.fixture(scope="module")
def renderer():
    return GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)


@pytest.fixture(scope="module")
def reference(scene, renderer):
    cloud, cameras = scene
    engine = RenderEngine(renderer)
    return [engine.render(cloud, camera) for camera in cameras]


def run_with_gateway(renderer, body, **gateway_kwargs):
    """Start a service + gateway, run ``body(service, gateway)``, clean up."""

    async def main():
        async with RenderService(
            renderer, max_batch_size=4, max_wait=0.002
        ) as service:
            gateway = RenderGateway(service, **gateway_kwargs)
            await gateway.start()
            try:
                return await body(service, gateway)
            finally:
                await gateway.close()

    return asyncio.run(main())


class TestStreaming:
    def test_tcp_stream_bit_identical(self, scene, renderer, reference):
        """The acceptance criterion, over a real localhost socket."""
        cloud, cameras = scene

        async def body(service, gateway):
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                results = []
                async for index, result in client.stream_trajectory(
                    cloud, cameras
                ):
                    results.append((index, result))
                return results
            finally:
                await client.close()

        results = run_with_gateway(renderer, body)
        assert [index for index, _ in results] == list(range(len(cameras)))
        for (_, result), ref in zip(results, reference):
            assert np.array_equal(result.image, ref.image)
            assert result.stats == ref.stats

    def test_concurrent_connections_shared_verified(self, scene, renderer):
        """Several real connections; the shared verify helper passes and
        the service still coalesces across them."""
        cloud, cameras = scene

        async def body(service, gateway):
            clients = [
                await AsyncGatewayClient.connect("127.0.0.1", gateway.tcp_port)
                for _ in range(3)
            ]
            try:
                return await run_clients(
                    clients, cloud, [list(cameras)] * 3, keep_images=True
                )
            finally:
                for client in clients:
                    await client.close()

        report = run_with_gateway(renderer, body)
        assert report.frames == 3 * len(cameras)
        assert not verify_streamed_images(
            renderer, cloud, cameras, report.images
        )
        assert report.service["engine_renders"] < report.frames
        assert report.service["gateway"]["streams"] == 3
        assert report.service["gateway"]["frames_sent"] == report.frames

    def test_sync_client_stream_and_render(self, scene, renderer, reference):
        cloud, cameras = scene

        async def body(service, gateway):
            def sync_work():
                with GatewayClient("127.0.0.1", gateway.tcp_port) as client:
                    single = client.render_frame(cloud, cameras[0])
                    frames = list(client.stream_trajectory(cloud, cameras))
                    return single, frames

            return await asyncio.get_running_loop().run_in_executor(
                None, sync_work
            )

        single, frames = run_with_gateway(renderer, body)
        assert np.array_equal(single.image, reference[0].image)
        assert single.stats == reference[0].stats
        assert len(frames) == len(cameras)
        for (index, result), ref in zip(frames, reference):
            assert np.array_equal(result.image, ref.image)

    def test_sync_client_abandoned_stream_keeps_connection_usable(
        self, scene, renderer, reference
    ):
        cloud, cameras = scene

        async def body(service, gateway):
            def sync_work():
                with GatewayClient("127.0.0.1", gateway.tcp_port) as client:
                    stream = client.stream_trajectory(cloud, cameras)
                    next(stream)
                    stream.close()  # CANCEL goes out; stale frames skipped
                    return client.render_frame(cloud, cameras[2])

            return await asyncio.get_running_loop().run_in_executor(
                None, sync_work
            )

        result = run_with_gateway(renderer, body)
        assert np.array_equal(result.image, reference[2].image)


class TestFailureModes:
    def test_disconnect_mid_stream_cancels_service_request(
        self, scene, renderer, reference
    ):
        """Dropping the socket mid-stream cancels the outstanding service
        work, and the server keeps serving other clients."""
        cloud, cameras = scene
        # Long enough that the frames cannot all fit into the socket
        # buffers: the server must still be streaming at disconnect time.
        long_trajectory = list(cameras) * 10

        async def body(service, gateway):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.tcp_port
            )
            hello = await protocol.read_frame(reader)
            assert hello.type is MessageType.HELLO
            header, blob = protocol.encode_cloud(cloud)
            writer.write(protocol.encode_frame(MessageType.SCENE, header, blob))
            await writer.drain()
            scene_ok = await protocol.read_frame(reader)
            assert scene_ok.type is MessageType.SCENE_OK
            writer.write(
                protocol.encode_frame(
                    MessageType.STREAM,
                    {
                        "request_id": 1,
                        "scene_id": scene_ok.header["scene_id"],
                        "cameras": [
                            protocol.encode_camera(camera)
                            for camera in long_trajectory
                        ],
                    },
                )
            )
            await writer.drain()
            # Read exactly one frame, then vanish without CANCEL or BYE.
            first = await protocol.read_frame(reader)
            assert first.type is MessageType.FRAME
            writer.close()
            await writer.wait_closed()

            # The handler notices the EOF and cancels the stream task.
            for _ in range(100):
                if gateway.stats.cancelled_requests >= 1:
                    break
                await asyncio.sleep(0.01)
            assert gateway.stats.cancelled_requests >= 1

            # The gateway still serves a fresh client afterwards.
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                return await client.render_frame(cloud, cameras[0])
            finally:
                await client.close()

        result = run_with_gateway(renderer, body)
        assert np.array_equal(result.image, reference[0].image)

    def test_garbage_bytes_fatal_error_but_server_lives(
        self, scene, renderer, reference
    ):
        """A corrupt frame boundary closes that connection with an ERROR,
        and the listener keeps accepting."""
        cloud, cameras = scene

        async def body(service, gateway):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.tcp_port
            )
            await protocol.read_frame(reader)  # HELLO
            writer.write(b"\xff" * 64)  # insane length prefix
            await writer.drain()
            error = await protocol.read_frame(reader)
            assert error.type is MessageType.ERROR
            assert error.header["code"] == int(ErrorCode.FRAME_TOO_LARGE)
            assert await reader.read() == b""  # server closed the connection
            writer.close()
            await writer.wait_closed()

            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                return await client.render_frame(cloud, cameras[0])
            finally:
                await client.close()

        result = run_with_gateway(renderer, body)
        assert np.array_equal(result.image, reference[0].image)

    def test_malformed_request_keeps_connection_alive(self, scene, renderer):
        """Well-framed nonsense gets an ERROR frame; the same connection
        then serves a valid request."""
        cloud, cameras = scene

        async def body(service, gateway):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.tcp_port
            )
            await protocol.read_frame(reader)  # HELLO

            async def expect_error(code):
                frame = await protocol.read_frame(reader)
                assert frame.type is MessageType.ERROR
                assert frame.header["code"] == int(code)

            # Bad JSON header (framing intact).
            import struct

            header = b"{broken"
            payload = (
                struct.pack("!BI", int(MessageType.RENDER), len(header))
                + header
            )
            writer.write(struct.pack("!I", len(payload)) + payload)
            await writer.drain()
            await expect_error(ErrorCode.BAD_REQUEST)

            # Unknown message type.
            payload = struct.pack("!BI", 99, 2) + b"{}"
            writer.write(struct.pack("!I", len(payload)) + payload)
            await writer.drain()
            await expect_error(ErrorCode.BAD_REQUEST)

            # RENDER without a registered scene.
            writer.write(
                protocol.encode_frame(
                    MessageType.RENDER,
                    {
                        "request_id": 5,
                        "scene_id": "nope",
                        "camera": protocol.encode_camera(cameras[0]),
                    },
                )
            )
            await writer.drain()
            await expect_error(ErrorCode.UNKNOWN_SCENE)

            # RENDER with a bad request id.
            writer.write(
                protocol.encode_frame(
                    MessageType.RENDER, {"request_id": "seven"}
                )
            )
            await writer.drain()
            await expect_error(ErrorCode.BAD_REQUEST)

            # ... and the connection still works end to end.
            header, blob = protocol.encode_cloud(cloud)
            writer.write(protocol.encode_frame(MessageType.SCENE, header, blob))
            await writer.drain()
            scene_ok = await protocol.read_frame(reader)
            assert scene_ok.type is MessageType.SCENE_OK
            writer.write(
                protocol.encode_frame(
                    MessageType.RENDER,
                    {
                        "request_id": 6,
                        "scene_id": scene_ok.header["scene_id"],
                        "camera": protocol.encode_camera(cameras[0]),
                    },
                )
            )
            await writer.drain()
            frame = await protocol.read_frame(reader)
            assert frame.type is MessageType.FRAME
            writer.close()
            await writer.wait_closed()
            return gateway.stats.errors

        errors = run_with_gateway(renderer, body)
        assert errors == 4

    def test_admission_reject_429(self, scene, renderer):
        """At max_pending the gateway rejects instead of queueing."""
        cloud, cameras = scene

        async def body(service, gateway):
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                scene_id = await client.ensure_scene(cloud)
                # Occupy the single admission slot with a stream whose
                # first batch sits on a long flush timer.
                stream = client.stream_trajectory(cloud, cameras)
                stream_started = asyncio.ensure_future(stream.__anext__())
                for _ in range(100):
                    if gateway._pending >= 1:
                        break
                    await asyncio.sleep(0.005)
                with pytest.raises(GatewayError) as excinfo:
                    await client.render_frame(cloud, cameras[0])
                assert excinfo.value.code == int(ErrorCode.REJECTED)
                assert gateway.stats.rejected == 1
                assert gateway.stats.errors == 0  # 429s are not errors
                # Let the stream finish: the slot frees and requests pass.
                await stream_started
                async for _ in stream:
                    pass
                result = await client.render_frame(cloud, cameras[0])
                return result, scene_id
            finally:
                await client.close()

        async def main():
            async with RenderService(
                renderer, max_batch_size=8, max_wait=0.2
            ) as service:
                gateway = RenderGateway(service, max_pending=1)
                await gateway.start()
                try:
                    return await body(service, gateway)
                finally:
                    await gateway.close()

        result, _ = asyncio.run(main())
        engine = RenderEngine(renderer)
        assert np.array_equal(
            result.image, engine.render(cloud, cameras[0]).image
        )

    def test_scene_registry_bound(self, renderer):
        rng = np.random.default_rng(37)
        clouds = [make_cloud(12, rng) for _ in range(3)]
        camera = Camera(width=64, height=48, fx=60.0, fy=60.0)

        async def body(service, gateway):
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                await client.ensure_scene(clouds[0])
                await client.ensure_scene(clouds[1])
                with pytest.raises(GatewayError) as excinfo:
                    await client.ensure_scene(clouds[2])
                assert excinfo.value.code == int(ErrorCode.BAD_REQUEST)
                # Registered scenes still render.
                return await client.render_frame(clouds[0], camera)
            finally:
                await client.close()

        result = run_with_gateway(renderer, body, max_scenes=2)
        engine = RenderEngine(renderer)
        assert np.array_equal(
            result.image, engine.render(clouds[0], camera).image
        )

    def test_validation(self, renderer):
        service = RenderService(renderer)
        with pytest.raises(ValueError):
            RenderGateway(service, max_pending=0)
        with pytest.raises(ValueError):
            RenderGateway(service, max_scenes=0)


class TestHttpAdapter:
    def test_http_routes(self, scene, renderer, reference):
        cloud, cameras = scene

        async def http_get(port, path):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
            await writer.drain()
            data = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, body = data.partition(b"\r\n\r\n")
            status = int(head.split(b" ", 2)[1])
            return status, body

        async def body(service, gateway):
            gateway.register_scene("test", cloud, cameras)
            await gateway.start_http()
            port = gateway.http_port
            out = {}
            out["health"] = await http_get(port, "/healthz")
            out["stats"] = await http_get(port, "/stats")
            out["json"] = await http_get(
                port, "/render?scene=test&view=1&format=json"
            )
            out["ppm"] = await http_get(port, "/render?scene=test&view=0")
            out["missing"] = await http_get(port, "/render?scene=ghost")
            out["bad_view"] = await http_get(
                port, "/render?scene=test&view=99"
            )
            out["negative_view"] = await http_get(
                port, "/render?scene=test&view=-1"
            )
            out["bad_route"] = await http_get(port, "/nope")
            return out

        out = run_with_gateway(renderer, body)
        assert out["health"][0] == 200
        assert json.loads(out["health"][1]) == {"status": "ok"}
        stats = json.loads(out["stats"][1])
        assert "service" in stats and "gateway" in stats

        status, payload = out["json"]
        assert status == 200
        info = json.loads(payload)
        import hashlib

        expected = hashlib.sha256(
            np.ascontiguousarray(reference[1].image).tobytes()
        ).hexdigest()
        assert info["image_sha256"] == expected

        status, payload = out["ppm"]
        assert status == 200 and payload.startswith(b"P6\n")
        assert out["missing"][0] == 404
        assert out["bad_view"][0] == 400
        assert out["negative_view"][0] == 400  # no negative indexing
        assert out["bad_route"][0] == 404

    def test_http_stream_chunked_ndjson(self, scene, renderer, reference):
        """/stream emits a chunked NDJSON body whose per-frame SHA-256s
        all match direct engine renders — the whole-trajectory
        bit-identity check from a shell."""
        cloud, cameras = scene

        async def http_get_raw(port, path):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
            await writer.drain()
            data = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, body = data.partition(b"\r\n\r\n")
            return head, body

        def dechunk(body: bytes) -> bytes:
            out = bytearray()
            while body:
                size_line, _, body = body.partition(b"\r\n")
                size = int(size_line, 16)
                if size == 0:
                    break
                out += body[:size]
                body = body[size + 2 :]
            return bytes(out)

        async def body(service, gateway):
            gateway.register_scene("test", cloud, cameras)
            await gateway.start_http()
            port = gateway.http_port
            out = {}
            out["json"] = await http_get_raw(port, "/stream?scene=test")
            out["window"] = await http_get_raw(
                port, "/stream?scene=test&start=2&frames=3"
            )
            out["ppm"] = await http_get_raw(
                port, "/stream?scene=test&frames=2&format=ppm"
            )
            out["missing"] = await http_get_raw(port, "/stream?scene=ghost")
            out["bad_window"] = await http_get_raw(
                port, f"/stream?scene=test&frames={len(cameras) + 1}"
            )
            out["bad_int"] = await http_get_raw(
                port, "/stream?scene=test&frames=soon"
            )
            out["bad_format"] = await http_get_raw(
                port, "/stream?scene=test&format=gif"
            )
            return out

        out = run_with_gateway(renderer, body)

        import hashlib

        head, payload = out["json"]
        assert b" 200 " in head.split(b"\r\n")[0]
        assert b"Transfer-Encoding: chunked" in head
        assert payload.endswith(b"0\r\n\r\n")  # complete, not truncated
        records = [
            json.loads(line)
            for line in dechunk(payload).decode().splitlines()
            if line
        ]
        # The body terminates with an explicit eos record: a consumer
        # can tell "stream complete" from "connection died mid-body".
        eos = records.pop()
        assert eos == {"type": "eos", "frames": len(cameras)}
        assert [record["view"] for record in records] == list(
            range(len(cameras))
        )
        for record, ref in zip(records, reference):
            expected = hashlib.sha256(
                np.ascontiguousarray(ref.image).tobytes()
            ).hexdigest()
            assert record["image_sha256"] == expected

        head, payload = out["window"]
        records = [
            json.loads(line)
            for line in dechunk(payload).decode().splitlines()
            if line
        ]
        assert records.pop() == {"type": "eos", "frames": 3}
        assert [record["view"] for record in records] == [2, 3, 4]

        head, payload = out["ppm"]
        images = dechunk(payload)
        assert images.count(b"P6\n") == 2  # two concatenated PPM frames

        assert out["missing"][0].split(b"\r\n")[0].split(b" ")[1] == b"404"
        for key in ("bad_window", "bad_int", "bad_format"):
            assert out[key][0].split(b"\r\n")[0].split(b" ")[1] == b"400"

    def test_http_rejects_non_get(self, scene, renderer):
        cloud, cameras = scene

        async def body(service, gateway):
            await gateway.start_http()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.http_port
            )
            writer.write(b"POST /render HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            data = await reader.read()
            writer.close()
            await writer.wait_closed()
            return data

        data = run_with_gateway(renderer, body)
        assert b"405" in data.split(b"\r\n", 1)[0]


class TestServiceIntegration:
    def test_batch_workers_over_gateway_bit_identical(
        self, scene, renderer, reference
    ):
        """Pool-rendered batches (thread executor) through the socket."""
        cloud, cameras = scene

        async def main():
            async with RenderService(
                renderer,
                max_batch_size=4,
                max_wait=0.002,
                batch_workers=2,
                batch_executor="thread",
            ) as service:
                gateway = RenderGateway(service)
                await gateway.start()
                try:
                    client = await AsyncGatewayClient.connect(
                        "127.0.0.1", gateway.tcp_port
                    )
                    try:
                        return [
                            result
                            async for _, result in client.stream_trajectory(
                                cloud, cameras
                            )
                        ]
                    finally:
                        await client.close()
                finally:
                    await gateway.close()

        results = asyncio.run(main())
        for result, ref in zip(results, reference):
            assert np.array_equal(result.image, ref.image)
            assert result.stats == ref.stats

    def test_stats_roundtrip(self, scene, renderer):
        cloud, cameras = scene

        async def body(service, gateway):
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                await client.render_frame(cloud, cameras[0])
                return await client.stats_dict()
            finally:
                await client.close()

        stats = run_with_gateway(renderer, body)
        assert stats["requests"] == 1
        assert stats["engine_renders"] == 1
        assert stats["gateway"]["connections"] == 1
        assert stats["gateway"]["frames_sent"] == 1

"""Tests for the two-timescale adaptive micro-batch policy.

The slow loop is pure (no clocks), so convergence is tested against a
deterministic synthetic latency model: latency grows with batch size,
and the policy must steer the batch size into the equilibrium band
implied by the target — from above *and* from below — then hold it.
"""

import asyncio

import numpy as np
import pytest

from repro.core.pipeline import GSTGRenderer
from repro.gaussians.camera import Camera
from repro.serve import AdaptiveBatchPolicy, RenderService
from repro.tiles.boundary import BoundaryMethod
from tests.conftest import make_cloud


class TestMechanics:
    def test_observe_window_edge(self):
        policy = AdaptiveBatchPolicy(window=3)
        assert not policy.observe(0.01)
        assert not policy.observe(0.01)
        assert policy.observe(0.01)
        policy.adapt()
        assert not policy.observe(0.01)  # window was consumed

    def test_shrink_on_high_p95(self):
        policy = AdaptiveBatchPolicy(
            target_p95=0.05, window=4, batch_size=16, max_wait=0.01
        )
        for _ in range(4):
            policy.observe(0.2)
        batch, wait = policy.adapt()
        assert batch < 16 and wait < 0.01
        assert policy.last.action == "shrink"
        assert policy.last.p95 == pytest.approx(0.2)

    def test_grow_on_low_p95(self):
        policy = AdaptiveBatchPolicy(
            target_p95=0.05, window=4, batch_size=4, max_wait=0.002
        )
        for _ in range(4):
            policy.observe(0.001)
        batch, wait = policy.adapt()
        assert batch > 4 and wait > 0.002
        assert policy.last.action == "grow"

    def test_hold_inside_hysteresis_band(self):
        policy = AdaptiveBatchPolicy(
            target_p95=0.05, window=4, batch_size=8, low_watermark=0.6
        )
        for _ in range(4):
            policy.observe(0.04)  # between 0.03 and 0.05
        batch, _ = policy.adapt()
        assert batch == 8
        assert policy.last.action == "hold"

    def test_clamps(self):
        policy = AdaptiveBatchPolicy(
            target_p95=0.05,
            window=1,
            batch_size=1,
            max_wait=0.0002,
            min_batch=1,
            max_batch=4,
            min_wait=0.0002,
            max_wait_cap=0.001,
        )
        for _ in range(10):  # grow beyond the caps
            policy.observe(0.0)
            policy.adapt()
        assert policy.batch_size == 4
        assert policy.max_wait == pytest.approx(0.001)
        for _ in range(10):  # shrink beyond the floors
            policy.observe(1.0)
            policy.adapt()
        assert policy.batch_size == 1
        assert policy.max_wait == pytest.approx(0.0002)

    def test_adapt_without_observations_is_noop(self):
        policy = AdaptiveBatchPolicy(batch_size=8, max_wait=0.002)
        assert policy.adapt() == (8, 0.002)
        assert policy.adaptations == []

    def test_bind_adopts_service_knobs(self):
        policy = AdaptiveBatchPolicy(batch_size=8, max_batch=32)
        policy.bind(12, 0.004)
        assert policy.batch_size == 12
        assert policy.max_wait == pytest.approx(0.004)
        policy.bind(1000, 10.0)  # clamped
        assert policy.batch_size == 32
        assert policy.max_wait == policy.max_wait_cap

    def test_bind_clears_partial_latency_window(self):
        """Rebinding discards samples measured under the previous knobs.

        Regression: bind() used to keep the partial window, so the
        first post-rebind adapt() acted on the old regime's latencies —
        here three 1 s outliers that would force a shrink despite every
        post-rebind request being fast."""
        policy = AdaptiveBatchPolicy(target_p95=0.05, window=4, batch_size=8)
        for _ in range(3):
            policy.observe(1.0)  # stale: pre-rebind regime
        policy.bind(8, 0.002)
        for _ in range(3):
            assert not policy.observe(0.001)  # window restarted from zero
        assert policy.observe(0.001)
        policy.adapt()
        assert policy.last.action == "grow"  # not shrink: outliers gone
        assert policy.last.p95 == pytest.approx(0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(target_p95=0.0)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(window=0)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(min_batch=8, max_batch=4)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(grow=0.9)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(shrink=1.5)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(low_watermark=1.5)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy().observe(-1.0)


def drive_to_equilibrium(policy, *, per_item_s: float, rounds: int) -> "list[int]":
    """Feed the synthetic model: window latencies = per_item_s * batch.

    Models a service whose batch execution time scales with batch size
    (frames render serially inside a flush), the regime the slow loop
    exists for.  Returns the batch-size trace, one entry per adaptation.
    """
    trace = []
    for _ in range(rounds):
        for i in range(policy.window):
            # Deterministic spread: the p95 sits near the top of it.
            jitter = 1.0 + 0.05 * (i % 3)
            policy.observe(per_item_s * policy.batch_size * jitter)
        policy.adapt()
        trace.append(policy.batch_size)
    return trace


class TestConvergence:
    """The satellite acceptance: batch size converges under a synthetic
    latency target and stays in the equilibrium band."""

    # latency ~= 0.01 * batch, target p95 = 0.08 -> equilibrium band is
    # batch sizes whose p95 lies in (0.6 * 0.08, 0.08] ~= sizes 5..7.
    PER_ITEM_S = 0.01
    TARGET = 0.08
    BAND = range(4, 8)

    def make_policy(self, start: int) -> AdaptiveBatchPolicy:
        return AdaptiveBatchPolicy(
            target_p95=self.TARGET,
            window=8,
            batch_size=start,
            max_wait=0.002,
            max_batch=64,
        )

    def test_converges_from_below(self):
        policy = self.make_policy(start=1)
        trace = drive_to_equilibrium(
            policy, per_item_s=self.PER_ITEM_S, rounds=20
        )
        assert trace[-1] in self.BAND
        # ... and holds: the last adaptations stay in the band.
        assert all(size in self.BAND for size in trace[-5:])

    def test_converges_from_above(self):
        policy = self.make_policy(start=64)
        trace = drive_to_equilibrium(
            policy, per_item_s=self.PER_ITEM_S, rounds=20
        )
        assert trace[-1] in self.BAND
        assert all(size in self.BAND for size in trace[-5:])

    def test_stable_once_converged(self):
        policy = self.make_policy(start=6)
        trace = drive_to_equilibrium(
            policy, per_item_s=self.PER_ITEM_S, rounds=10
        )
        assert all(size in self.BAND for size in trace)


class TestServiceIntegration:
    def test_service_applies_adapted_knobs(self):
        """Cheap renders against a huge target: the service must grow its
        batcher's knobs after each full policy window."""
        rng = np.random.default_rng(41)
        cloud = make_cloud(20, rng)
        cameras = [
            Camera(width=64, height=48, fx=60.0 + i, fy=60.0 + i)
            for i in range(8)
        ]
        renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
        policy = AdaptiveBatchPolicy(target_p95=10.0, window=4)

        async def main():
            async with RenderService(
                renderer, max_batch_size=2, max_wait=0.001, policy=policy
            ) as service:
                for camera in cameras:
                    await service.render_frame(cloud, camera)
                return service.stats_dict()

        stats = asyncio.run(main())
        assert stats["adaptations"] == 2  # 8 requests / window of 4
        assert stats["batch_size"] > 2  # grew toward the huge target
        assert all(a.action == "grow" for a in policy.adaptations)

    def test_policy_binds_to_service_knobs(self):
        renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
        policy = AdaptiveBatchPolicy(batch_size=99, max_wait=0.03)
        RenderService(
            renderer, max_batch_size=5, max_wait=0.004, policy=policy
        )
        assert policy.batch_size == 5
        assert policy.max_wait == pytest.approx(0.004)

"""Overload soak: the admission-slot invariant under a mixed storm.

The bugfix sweep's acceptance test: after a storm of concurrent
requests in which some are 429-rejected, some are client-cancelled,
some disconnect mid-stream and some are malformed, the gateway's
pending-request count returns to exactly zero — no slot leaks on any
exit path, TCP or HTTP.  Alongside it, the client pool's jittered
backoff and its ``retry_after_ms`` floor are pinned down numerically.
"""

import asyncio
import random

import numpy as np
import pytest

from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.gaussians.camera import Camera
from repro.serve import (
    AsyncGatewayClient,
    GatewayClientPool,
    GatewayError,
    RenderGateway,
    RenderService,
)
from repro.serve import protocol
from repro.serve.protocol import ErrorCode, MessageType
from repro.tiles.boundary import BoundaryMethod
from tests.conftest import make_cloud


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(53)
    cloud = make_cloud(25, rng)
    cameras = [
        Camera(width=72, height=48, fx=64.0 + i, fy=64.0 + i)
        for i in range(3)
    ]
    return cloud, cameras


@pytest.fixture(scope="module")
def renderer():
    return GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)


async def wait_for_drain(gateway, timeout: float = 5.0) -> None:
    """Poll until every admission slot is back (cancellations settle
    asynchronously), failing loudly rather than hanging."""
    deadline = asyncio.get_running_loop().time() + timeout
    while gateway._pending > 0:
        if asyncio.get_running_loop().time() > deadline:
            break
        await asyncio.sleep(0.01)


class TestTcpOverloadSoak:
    def test_pending_returns_to_zero_after_mixed_storm(
        self, scene, renderer
    ):
        cloud, cameras = scene
        rejected_seen = 0

        async def polite_render(port):
            """A bulk one-shot that may be 429'd; both outcomes legal."""
            nonlocal rejected_seen
            client = await AsyncGatewayClient.connect("127.0.0.1", port)
            try:
                try:
                    await client.render_frame(cloud, cameras[0])
                except GatewayError as exc:
                    assert exc.code == int(ErrorCode.REJECTED)
                    assert exc.retry_after_ms is not None
                    rejected_seen += 1
            finally:
                await client.close()

        async def abandoned_stream(port):
            """Start an interactive stream, take one frame, cancel."""
            nonlocal rejected_seen
            client = await AsyncGatewayClient.connect("127.0.0.1", port)
            try:
                agen = client.stream_trajectory(
                    cloud, cameras, request_class="interactive"
                )
                try:
                    await agen.__anext__()
                except GatewayError as exc:
                    assert exc.code == int(ErrorCode.REJECTED)
                    rejected_seen += 1
                finally:
                    await agen.aclose()
            finally:
                await client.close()

        async def rude_stream(port, scene_id):
            """Start a stream at the protocol level and yank the socket
            after the first reply frame — the mid-stream disconnect."""
            nonlocal rejected_seen
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await protocol.client_hello(reader, writer, None)
            writer.write(
                protocol.encode_frame(
                    MessageType.STREAM,
                    {
                        "request_id": 1,
                        "scene_id": scene_id,
                        "cameras": [
                            protocol.encode_camera(camera)
                            for camera in cameras
                        ],
                        "class": "interactive",
                    },
                )
            )
            await writer.drain()
            frame = await protocol.read_frame(reader)
            if frame is not None and frame.type is MessageType.ERROR:
                assert int(frame.header["code"]) == int(ErrorCode.REJECTED)
                rejected_seen += 1
            writer.transport.abort()

        async def malformed(port):
            """Unknown class: a 400, and nothing may leak from the
            admit-then-decode-fails path."""
            client = await AsyncGatewayClient.connect("127.0.0.1", port)
            try:
                with pytest.raises(GatewayError) as excinfo:
                    await client.render_frame(
                        cloud, cameras[0], request_class="warp"
                    )
                assert excinfo.value.code == int(ErrorCode.BAD_REQUEST)
            finally:
                await client.close()

        async def main():
            async with RenderService(
                renderer, max_batch_size=4, max_wait=0.05
            ) as service:
                gateway = RenderGateway(service, max_pending=2)
                await gateway.start()
                try:
                    seed_client = await AsyncGatewayClient.connect(
                        "127.0.0.1", gateway.tcp_port
                    )
                    scene_id = await seed_client.ensure_scene(cloud)
                    port = gateway.tcp_port
                    await asyncio.gather(
                        *[polite_render(port) for _ in range(6)],
                        *[abandoned_stream(port) for _ in range(3)],
                        *[rude_stream(port, scene_id) for _ in range(2)],
                        *[malformed(port) for _ in range(2)],
                    )
                    await wait_for_drain(gateway)
                    invariants = (
                        gateway._pending,
                        dict(gateway.admission.pending),
                        gateway.stats.rejected,
                    )
                    # The freed capacity is immediately usable again.
                    result = await seed_client.render_frame(
                        cloud, cameras[0]
                    )
                    await seed_client.close()
                    return invariants, result
                finally:
                    await gateway.close()

        (pending, per_class, rejected), result = asyncio.run(main())
        assert pending == 0
        assert all(count == 0 for count in per_class.values()), per_class
        assert rejected == rejected_seen  # every 429 was counted, once
        engine = RenderEngine(renderer)
        assert np.array_equal(
            result.image, engine.render(cloud, cameras[0]).image
        )


class TestHttpOverloadSoak:
    def test_pending_returns_to_zero_after_mixed_storm(
        self, scene, renderer
    ):
        cloud, cameras = scene

        async def http_status(port, path, *, abort_after_status=False):
            """GET ``path``; optionally vanish right after the status
            line (the HTTP mid-body disconnect)."""
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split(b" ", 2)[1])
            if abort_after_status:
                writer.transport.abort()
                return status
            await reader.read()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return status

        async def main():
            async with RenderService(
                renderer, max_batch_size=4, max_wait=0.05
            ) as service:
                gateway = RenderGateway(service, max_pending=1)
                gateway.register_scene("test", cloud, cameras)
                await gateway.start()
                await gateway.start_http()
                try:
                    port = gateway.http_port
                    statuses = await asyncio.gather(
                        *[
                            http_status(port, "/render?scene=test&view=0")
                            for _ in range(5)
                        ],
                        *[
                            http_status(
                                port,
                                "/stream?scene=test",
                                abort_after_status=True,
                            )
                            for _ in range(3)
                        ],
                        http_status(
                            port, "/render?scene=test&view=0&class=warp"
                        ),
                    )
                    await wait_for_drain(gateway)
                    invariants = (
                        gateway._pending,
                        dict(gateway.admission.pending),
                        gateway.stats.rejected,
                    )
                    final = await http_status(
                        port, "/render?scene=test&view=0"
                    )
                    return statuses, invariants, final
                finally:
                    await gateway.close()

        statuses, (pending, per_class, rejected), final = asyncio.run(main())
        assert pending == 0
        assert all(count == 0 for count in per_class.values()), per_class
        assert statuses[-1] == 400  # the unknown class
        # HTTP 429s land in stats.rejected exactly like TCP ones.
        assert rejected == sum(1 for s in statuses if s == 429)
        assert all(s in (200, 429, 400) for s in statuses)
        assert final == 200  # all capacity recovered


class TestPoolBackoff:
    def make_pool(self, **kwargs):
        kwargs.setdefault("backoff", 0.1)
        kwargs.setdefault("backoff_cap", 0.4)
        pool = GatewayClientPool("127.0.0.1", 1, **kwargs)
        pool._rng = random.Random(1234)  # deterministic jitter in tests
        return pool

    def test_delay_is_jittered_exponential_with_cap(self):
        pool = self.make_pool()
        seen = set()
        for attempt in range(5):
            base = min(0.1 * 2**attempt, 0.4)
            for _ in range(50):
                delay = pool._retry_delay(attempt, None)
                assert 0.5 * base <= delay <= 1.5 * base
                seen.add(round(delay, 6))
        # Jitter means the delays actually spread (no thundering herd).
        assert len(seen) > 10

    def test_server_hint_floors_the_delay(self):
        pool = self.make_pool()
        for _ in range(50):
            assert pool._retry_delay(0, 500) >= 0.5
        # A tiny hint never *shortens* the computed backoff.
        base = min(0.1 * 2**3, 0.4)
        for _ in range(50):
            assert pool._retry_delay(3, 1) >= 0.5 * base

    def test_validation(self):
        with pytest.raises(ValueError):
            GatewayClientPool("127.0.0.1", 1, backoff=0.5, backoff_cap=0.1)

"""End-to-end deadlines and frame checksums: the serve-layer half.

Covers the protocol helpers (relative wire budget ↔ absolute monotonic
instant, blob digests), the service's deadline-bounded waits, the
pinned 504 for a RENDER whose backend is chaos-stalled behind the
router, v2 wire compatibility for requests that carry *no* deadline,
the client pool's total-deadline cap on retry backoff, and the
client-side checksum rejection path.  Plain ``asyncio.run`` drivers.
"""

import asyncio
import os
import time

import numpy as np
import pytest

from repro.chaos import ChaosProxy, ChaosSchedule, Fault, FaultKind
from repro.cluster import BackendSpec, ClusterMap, HealthMonitor, ShardRouter
from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.gaussians.camera import Camera
from repro.serve import (
    AsyncGatewayClient,
    GatewayClientPool,
    GatewayError,
    RenderGateway,
    RenderService,
)
from repro.serve import protocol
from repro.serve.protocol import ErrorCode, MessageType, ProtocolError
from repro.tiles.boundary import BoundaryMethod
from tests.conftest import make_cloud


@pytest.fixture(scope="module")
def renderer():
    return GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(47)
    cloud = make_cloud(30, rng)
    camera = Camera(width=80, height=60, fx=70.0, fy=70.0)
    return cloud, camera


@pytest.fixture(scope="module")
def reference(scene, renderer):
    cloud, camera = scene
    return RenderEngine(renderer).render(cloud, camera)


class TestDeadlineHelpers:
    def test_absent_field_means_no_deadline(self):
        assert protocol.deadline_from_header({}) is None
        assert protocol.deadline_remaining_ms(None) is None

    def test_budget_is_pinned_relative_to_arrival(self):
        before = time.monotonic()
        deadline = protocol.deadline_from_header({"deadline_ms": 500})
        after = time.monotonic()
        assert before + 0.5 <= deadline <= after + 0.5

    def test_remaining_ms_clamps_to_at_least_one(self):
        # A deadline that is about to expire still ships a positive
        # budget downstream (the next hop answers the 504, not a 400).
        assert protocol.deadline_remaining_ms(time.monotonic()) == 1
        remaining = protocol.deadline_remaining_ms(time.monotonic() + 2.0)
        assert 1500 <= remaining <= 2000

    @pytest.mark.parametrize(
        "value", ["soon", -1, 0, float("nan"), float("inf")]
    )
    def test_malformed_budget_is_a_400(self, value):
        with pytest.raises(ProtocolError) as info:
            protocol.deadline_from_header({"deadline_ms": value})
        assert info.value.code is ErrorCode.BAD_REQUEST

    def test_explicit_null_budget_means_absent(self):
        # JSON ``"deadline_ms": null`` is "no deadline", not a 400.
        assert protocol.deadline_from_header({"deadline_ms": None}) is None

    def test_deadline_expired_is_a_504(self):
        exc = protocol.deadline_expired("too late")
        assert exc.code is ErrorCode.DEADLINE_EXCEEDED
        assert int(ErrorCode.DEADLINE_EXCEEDED) == 504


class TestChecksums:
    def test_result_frames_carry_a_blob_digest(self, reference):
        payload = protocol.encode_result_frame(7, 0, reference)
        frame = protocol.read_frame_from(_Stream(payload))
        assert frame.header["sha256"] == protocol.blob_digest(frame.blob)
        protocol.verify_frame_checksum(frame)  # must not raise

    def test_checksum_can_be_omitted_and_absent_passes(self, reference):
        payload = protocol.encode_result_frame(7, 0, reference, checksum=False)
        frame = protocol.read_frame_from(_Stream(payload))
        assert "sha256" not in frame.header
        protocol.verify_frame_checksum(frame)  # pre-checksum peers pass

    def test_mismatch_is_a_recoverable_protocol_error(self, reference):
        payload = protocol.encode_result_frame(7, 0, reference)
        frame = protocol.read_frame_from(_Stream(payload))
        damaged = protocol.Frame(
            frame.type, frame.header,
            bytes([frame.blob[0] ^ 0xFF]) + frame.blob[1:],
        )
        with pytest.raises(ProtocolError) as info:
            protocol.verify_frame_checksum(damaged)
        # Recoverable: the frame boundary is intact, only bytes lie.
        assert not info.value.fatal
        assert info.value.code is ErrorCode.INTERNAL


class _Stream:
    """Minimal file-like reader over bytes for ``read_frame_from``."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read(self, n: int) -> bytes:
        chunk = self._data[self._pos:self._pos + n]
        self._pos += len(chunk)
        return chunk


class TestServiceDeadline:
    def test_expired_deadline_raises_timeout(self, renderer, scene):
        cloud, camera = scene

        async def main():
            service = RenderService(renderer, max_batch_size=2, max_wait=0.001)
            try:
                with pytest.raises(asyncio.TimeoutError):
                    await service.render_frame(
                        cloud, camera, deadline=time.monotonic() - 0.001
                    )
            finally:
                await service.close()

        asyncio.run(main())

    def test_generous_deadline_changes_nothing(
        self, renderer, scene, reference
    ):
        cloud, camera = scene

        async def main():
            service = RenderService(renderer, max_batch_size=2, max_wait=0.001)
            try:
                result = await service.render_frame(
                    cloud, camera, deadline=time.monotonic() + 30.0
                )
                bare = await service.render_frame(cloud, camera)
            finally:
                await service.close()
            return result, bare

        result, bare = asyncio.run(main())
        for got in (result, bare):
            assert np.array_equal(got.image, reference.image)
            assert got.stats == reference.stats


class TestGatewayDeadline:
    def test_render_against_stalled_backend_is_a_pinned_504(
        self, renderer, scene
    ):
        """The acceptance bound: RENDER with ``deadline_ms`` against a
        chaos-stalled backend answers 504 within the deadline plus one
        relay hop — with ``request_timeout`` far larger, so the 504
        provably came from the deadline, not the stall watchdog.  The
        stall is mid-FRAME on the backend's only link and replication
        is 1: without deadlines this request would hang for the full
        watchdog timeout."""
        cloud, camera = scene
        # Downstream offset 2000: past HELLO + SCENE_OK (a few hundred
        # bytes) and inside the first FRAME's ~14.4 KB pixel blob.
        schedule = ChaosSchedule(per_connection={
            0: [Fault(FaultKind.STALL, after_bytes=2000,
                      duration=float("inf"))],
        })

        async def main():
            service = RenderService(renderer, max_batch_size=2, max_wait=0.001)
            gateway = RenderGateway(service)
            await gateway.start()
            proxy = ChaosProxy(
                "127.0.0.1", gateway.tcp_port, schedule=schedule
            )
            await proxy.start()
            specs = [BackendSpec("b0", "127.0.0.1", proxy.port)]
            cluster_map = ClusterMap(specs, replication=1)
            monitor = HealthMonitor(cluster_map)  # never started
            router = ShardRouter(
                cluster_map, monitor=monitor, request_timeout=5.0
            )
            await router.start()
            try:
                client = await AsyncGatewayClient.connect(
                    "127.0.0.1", router.tcp_port
                )
                try:
                    start = time.monotonic()
                    with pytest.raises(GatewayError) as info:
                        await client.render_frame(
                            cloud, camera, deadline_ms=400
                        )
                    elapsed = time.monotonic() - start
                finally:
                    await client.close()
                return info.value, elapsed, router.stats.failovers, proxy.stats
            finally:
                await router.close()
                await proxy.close()
                await gateway.close()
                await service.close()

        error, elapsed, failovers, stats = asyncio.run(main())
        assert error.code == int(ErrorCode.DEADLINE_EXCEEDED)
        assert stats.count(FaultKind.STALL) == 1  # the stall really fired
        # Pinned: at least the deadline, at most deadline + one hop of
        # slack — and nowhere near the 5 s watchdog.  The upper bound
        # is env-softenable for noisy shared runners.
        assert 0.35 <= elapsed
        assert elapsed < float(os.environ.get("DEADLINE_SMOKE_MAX_S", "2.0"))
        # Deadline expiry is the *client's* problem, not the backend's:
        # no failover, no failure charged to a healthy-but-late backend.
        assert failovers == 0


class TestWireCompat:
    def test_request_without_deadline_is_served_exactly_as_before(
        self, renderer, scene, reference
    ):
        """An old v2 client — raw frames, no ``deadline_ms``, no
        knowledge of ``sha256`` — round-trips unchanged against a new
        gateway, and the FRAME it gets back decodes bit-identically
        while carrying the (ignorable) checksum field."""
        cloud, camera = scene

        async def main():
            service = RenderService(renderer, max_batch_size=2, max_wait=0.001)
            gateway = RenderGateway(service)
            await gateway.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.tcp_port
                )
                try:
                    await protocol.client_hello(reader, writer, None)
                    header, blob = protocol.encode_cloud(cloud)
                    writer.write(protocol.encode_frame(
                        MessageType.SCENE, header, blob
                    ))
                    await writer.drain()
                    frame = await protocol.read_frame(reader)
                    assert frame.type is MessageType.SCENE_OK
                    scene_id = frame.header["scene_id"]
                    writer.write(protocol.encode_frame(
                        MessageType.RENDER,
                        {
                            "request_id": 1,
                            "scene_id": scene_id,
                            "camera": protocol.encode_camera(camera),
                        },
                    ))
                    await writer.drain()
                    return await protocol.read_frame(reader)
                finally:
                    writer.close()
            finally:
                await gateway.close()
                await service.close()

        frame = asyncio.run(main())
        assert frame.type is MessageType.FRAME
        # The checksum rides along; a v2 decoder simply never looks.
        assert frame.header["sha256"] == protocol.blob_digest(frame.blob)
        request_id, index, result = protocol.decode_result_frame(frame)
        assert (request_id, index) == (1, 0)
        assert np.array_equal(result.image, reference.image)
        assert result.stats == reference.stats


class TestPoolDeadline:
    def test_backoff_never_outlives_the_deadline(self, scene):
        """A retry sleep that would land past the request deadline is
        not taken: the pool raises 504 immediately instead of burning
        the remaining budget asleep and delivering a late failure."""
        cloud, camera = scene

        async def main():
            # Nothing listens here: every attempt is a retryable 503.
            sock_holder = await asyncio.start_server(
                lambda r, w: None, host="127.0.0.1", port=0
            )
            port = sock_holder.sockets[0].getsockname()[1]
            sock_holder.close()
            await sock_holder.wait_closed()
            pool = GatewayClientPool(
                "127.0.0.1", port,
                retries=10, backoff=1.0, connect_timeout=0.5,
            )
            try:
                start = time.monotonic()
                with pytest.raises(GatewayError) as info:
                    await pool.render_frame(cloud, camera, deadline_ms=250)
                return info.value, time.monotonic() - start
            finally:
                await pool.close()

        error, elapsed = asyncio.run(main())
        assert error.code == int(ErrorCode.DEADLINE_EXCEEDED)
        # backoff=1.0 means the first sleep alone (≥ 0.5 s jittered)
        # would outlive the 250 ms deadline: the pool must not sleep.
        assert elapsed < 0.5


class TestClientChecksum:
    def test_client_rejects_a_lying_frame_as_retryable(self, scene):
        """A FRAME whose blob does not match its ``sha256`` must never
        surface as pixels: the client raises a retryable 503."""
        cloud, camera = scene

        async def serve_corrupt(reader, writer):
            writer.write(protocol.encode_frame(
                MessageType.HELLO, {"version": protocol.PROTOCOL_VERSION}
            ))
            await writer.drain()
            while True:
                frame = await protocol.read_frame(reader)
                if frame is None:
                    break
                if frame.type is MessageType.SCENE:
                    writer.write(protocol.encode_frame(
                        MessageType.SCENE_OK, {"scene_id": "s"}
                    ))
                elif frame.type is MessageType.RENDER:
                    blob = b"\x00" * 12
                    writer.write(protocol.encode_frame(
                        MessageType.FRAME,
                        {
                            "request_id": frame.header["request_id"],
                            "index": 0,
                            "image": {"dtype": "|u1", "shape": [2, 2, 3]},
                            "stats": {},
                            "sha256": "0" * 64,  # does not match blob
                        },
                        blob,
                    ))
                await writer.drain()
            writer.close()

        async def main():
            server = await asyncio.start_server(
                serve_corrupt, host="127.0.0.1", port=0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                client = await AsyncGatewayClient.connect("127.0.0.1", port)
                try:
                    with pytest.raises(GatewayError) as info:
                        await client.render_frame(cloud, camera)
                finally:
                    await client.close()
                return info.value
            finally:
                server.close()
                await server.wait_closed()

        error = asyncio.run(main())
        assert error.code == int(ErrorCode.SHUTTING_DOWN)  # retryable
        assert "checksum" in error.message.lower()

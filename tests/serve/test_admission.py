"""Tests for class-based admission control (``repro.serve.admission``).

The controller is pure state-machine code, so most of this file is
synchronous: quotas, shedding, hysteresis and the retry hint are all
checked decision by decision.  The integration half then proves the
wire story — the optional ``class`` field on RENDER/STREAM, per-class
STATS, the 429's ``retry_after_ms`` hint over TCP and HTTP — and that
class-aware serving never changes a single served byte.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.gaussians.camera import Camera
from repro.serve import (
    AdmissionController,
    AdmissionRejected,
    AsyncGatewayClient,
    ClassSpec,
    GatewayError,
    ProtocolError,
    RenderGateway,
    RenderService,
)
from repro.serve.protocol import ErrorCode
from repro.tiles.boundary import BoundaryMethod
from tests.conftest import make_cloud


class TestResolution:
    def test_absent_and_empty_map_to_default(self):
        ctl = AdmissionController(4)
        assert ctl.resolve(None) == "bulk"
        assert ctl.resolve("") == "bulk"
        assert ctl.resolve("interactive") == "interactive"

    def test_unknown_class_is_bad_request_not_reject(self):
        ctl = AdmissionController(4)
        with pytest.raises(ProtocolError) as excinfo:
            ctl.resolve("warp")
        assert excinfo.value.code is ErrorCode.BAD_REQUEST
        assert not isinstance(excinfo.value, AdmissionRejected)

    def test_roster_order_and_default(self):
        ctl = AdmissionController(4)
        assert ctl.classes() == ("interactive", "bulk", "prefetch")
        assert ctl.default_class == "bulk"
        custom = AdmissionController(
            4,
            classes=(ClassSpec("a", priority=1, weight=1.0),),
        )
        # No "bulk" in the roster: default falls to the lowest priority.
        assert custom.default_class == "a"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(4, window=0)
        with pytest.raises(ValueError):
            AdmissionController(4, relax_after=0)
        with pytest.raises(ValueError):
            AdmissionController(4, low_watermark=0.0)
        with pytest.raises(ValueError):
            AdmissionController(4, classes=())
        dup_name = (
            ClassSpec("a", priority=1, weight=1.0),
            ClassSpec("a", priority=0, weight=1.0),
        )
        with pytest.raises(ValueError):
            AdmissionController(4, classes=dup_name)
        dup_priority = (
            ClassSpec("a", priority=1, weight=1.0),
            ClassSpec("b", priority=1, weight=1.0),
        )
        with pytest.raises(ValueError):
            AdmissionController(4, classes=dup_priority)
        with pytest.raises(ValueError):
            AdmissionController(
                4, classes=(ClassSpec("a", priority=1, weight=0.0),)
            )
        with pytest.raises(ValueError):
            AdmissionController(4, default_class="warp")
        with pytest.raises(ValueError):
            AdmissionController(4).set_target("warp", 0.1)
        with pytest.raises(ValueError):
            AdmissionController(4).set_target("bulk", 0.0)


class TestQuotas:
    def test_single_slot_admits_any_class(self):
        """Floor-based shares: a max_pending=1 edge keeps the old
        single-counter behaviour — any class takes the one slot."""
        ctl = AdmissionController(1)
        assert all(ctl.share(name) == 0 for name in ctl.classes())
        for name in ("bulk", "prefetch", "interactive"):
            with ctl.admit(name):
                # The slot is genuinely exclusive while held.
                with pytest.raises(AdmissionRejected):
                    ctl.admit("interactive")
            assert ctl.total_pending == 0

    def test_lower_class_cannot_invade_reserved_headroom(self):
        # capacity 4, weights 0.5/0.4/0.1: shares 2/1/0.
        ctl = AdmissionController(4)
        assert ctl.share("interactive") == 2
        assert ctl.share("bulk") == 1
        assert ctl.share("prefetch") == 0
        # bulk may use capacity minus interactive's unused reservation.
        bulk = [ctl.admit("bulk"), ctl.admit("bulk")]
        with pytest.raises(AdmissionRejected) as excinfo:
            ctl.admit("bulk")
        assert not excinfo.value.shed  # quota, not shedding
        # prefetch additionally leaves bulk's reservation alone.
        with pytest.raises(AdmissionRejected):
            ctl.admit("prefetch")
        # The headroom the quota preserved is really there.
        interactive = [ctl.admit("interactive"), ctl.admit("interactive")]
        with pytest.raises(AdmissionRejected):
            ctl.admit("interactive")  # capacity itself is the last wall
        for ticket in bulk + interactive:
            ticket.release()
        assert ctl.total_pending == 0
        assert ctl.rejected["bulk"] == 1
        assert ctl.rejected["prefetch"] == 1
        assert ctl.rejected["interactive"] == 1
        assert ctl.shed["bulk"] == 0

    def test_ticket_release_is_idempotent(self):
        ctl = AdmissionController(2)
        ticket = ctl.admit("bulk")
        assert not ticket.released
        ticket.release()
        ticket.release()  # done-callback + belt-and-braces finally
        assert ticket.released
        assert ctl.pending["bulk"] == 0
        with ctl.admit("bulk") as managed:
            assert ctl.pending["bulk"] == 1
        assert managed.released
        assert ctl.total_pending == 0


class TestShedding:
    def make(self, **kwargs):
        kwargs.setdefault("window", 4)
        kwargs.setdefault("relax_after", 2)
        return AdmissionController(8, **kwargs)

    def fill_window(self, ctl, name, latency_s):
        full = False
        for _ in range(ctl.window):
            full = ctl.observe(name, latency_s)
        assert full
        return ctl.adapt()

    def test_no_target_never_sheds(self):
        ctl = self.make()
        assert self.fill_window(ctl, "interactive", 10.0) == 0
        assert ctl.adaptations == 0

    def test_interactive_violation_sheds_bulk_and_prefetch(self):
        ctl = self.make()
        ctl.set_target("interactive", 0.05)
        assert self.fill_window(ctl, "interactive", 0.2) == 2
        for name in ("bulk", "prefetch"):
            with pytest.raises(AdmissionRejected) as excinfo:
                ctl.admit(name)
            assert excinfo.value.shed
            assert ctl.shed[name] == 1
        # The top class is never shed.
        ctl.admit("interactive").release()

    def test_bulk_violation_sheds_prefetch_only(self):
        ctl = self.make()
        ctl.set_target("bulk", 0.05)
        assert self.fill_window(ctl, "bulk", 0.2) == 1
        with pytest.raises(AdmissionRejected):
            ctl.admit("prefetch")
        ctl.admit("bulk").release()
        ctl.admit("interactive").release()

    def test_retry_after_scales_with_level_and_distance(self):
        ctl = self.make()  # base 25 ms, top priority 2
        assert ctl.retry_after_ms("interactive") == 25
        assert ctl.retry_after_ms("bulk") == 50
        assert ctl.retry_after_ms("prefetch") == 75
        ctl.set_target("interactive", 0.05)
        self.fill_window(ctl, "interactive", 0.2)  # level 2: x4
        assert ctl.retry_after_ms("bulk") == 200
        assert ctl.retry_after_ms("prefetch") == 300
        with pytest.raises(AdmissionRejected) as excinfo:
            ctl.admit("bulk")
        assert excinfo.value.retry_after_ms == 200
        capped = AdmissionController(8, retry_after_cap_ms=60.0)
        assert capped.retry_after_ms("prefetch") == 60

    def test_relax_needs_consecutive_calm_windows(self):
        ctl = self.make()  # relax_after=2, low_watermark=0.5
        ctl.set_target("interactive", 0.05)
        self.fill_window(ctl, "interactive", 0.2)
        assert ctl.shed_level == 2
        # One calm window is not enough...
        assert self.fill_window(ctl, "interactive", 0.01) == 2
        # ...a violation in between resets the streak...
        assert self.fill_window(ctl, "interactive", 0.2) == 2
        assert self.fill_window(ctl, "interactive", 0.01) == 2
        # ...and the level steps down one per completed streak.
        assert self.fill_window(ctl, "interactive", 0.01) == 1
        for _ in range(2):
            self.fill_window(ctl, "interactive", 0.01)
        assert ctl.shed_level == 0

    def test_near_target_window_holds_the_level(self):
        """p95 between low_watermark*target and target is the
        hysteresis band: no escalation, no relax progress."""
        ctl = self.make()
        ctl.set_target("interactive", 0.05)
        self.fill_window(ctl, "interactive", 0.2)
        for _ in range(4):
            assert self.fill_window(ctl, "interactive", 0.04) == 2

    def test_window_counts_across_classes_and_clears(self):
        ctl = self.make()
        for _ in range(ctl.window - 1):
            assert not ctl.observe("bulk", 0.01)
        assert ctl.observe("interactive", 0.01)  # mixed classes fill it
        ctl.adapt()
        assert not ctl.observe("bulk", 0.01)  # the count restarted

    def test_stats_dict_shape(self):
        ctl = self.make()
        ctl.set_target("interactive", 0.05)
        ctl.admit("bulk")
        stats = ctl.stats_dict()
        assert stats["capacity"] == 8
        assert stats["default_class"] == "bulk"
        assert stats["pending"] == 1
        assert set(stats["classes"]) == {"interactive", "bulk", "prefetch"}
        interactive = stats["classes"]["interactive"]
        assert interactive["target_p95_ms"] == pytest.approx(50.0)
        assert stats["classes"]["bulk"]["pending"] == 1
        json.dumps(stats)  # JSON-ready, as STATS/HTTP require


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(47)
    cloud = make_cloud(30, rng)
    cameras = [
        Camera(width=80, height=56, fx=70.0 + i, fy=70.0 + i)
        for i in range(4)
    ]
    return cloud, cameras


@pytest.fixture(scope="module")
def renderer():
    return GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)


def run_with_gateway(renderer, body, **gateway_kwargs):
    async def main():
        async with RenderService(
            renderer, max_batch_size=4, max_wait=0.002
        ) as service:
            gateway = RenderGateway(service, **gateway_kwargs)
            await gateway.start()
            try:
                return await body(service, gateway)
            finally:
                await gateway.close()

    return asyncio.run(main())


class TestGatewayIntegration:
    def test_class_on_the_wire_and_per_class_stats(self, scene, renderer):
        """RENDER/STREAM carry the optional class field end to end:
        HELLO advertises the roster, the service counts per class, the
        gateway's STATS expose the admission snapshot — and the frames
        stay bit-identical to direct engine renders."""
        cloud, cameras = scene

        async def body(service, gateway):
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                hello = dict(client.hello)
                results = [
                    await client.render_frame(
                        cloud, cameras[0], request_class="interactive"
                    ),
                    # No class field: a v2-style request, counted bulk.
                    await client.render_frame(cloud, cameras[1]),
                ]
                async for _, result in client.stream_trajectory(
                    cloud, cameras[2:], request_class="prefetch"
                ):
                    results.append(result)
                stats = await client.stats_dict()
                return hello, results, stats, dict(
                    service.stats.class_requests
                )
            finally:
                await client.close()

        hello, results, stats, class_requests = run_with_gateway(
            renderer, body
        )
        assert hello["classes"] == ["interactive", "bulk", "prefetch"]
        assert hello["default_class"] == "bulk"
        assert class_requests == {
            "interactive": 1,
            "bulk": 1,
            "prefetch": 1,  # one stream, counted once
        }
        admission = stats["gateway"]["admission"]
        assert admission["classes"]["interactive"]["admitted"] == 1
        assert admission["classes"]["bulk"]["admitted"] == 1
        assert admission["classes"]["prefetch"]["admitted"] == 1
        assert admission["pending"] == 0
        engine = RenderEngine(renderer)
        for result, camera in zip(results, cameras):
            assert np.array_equal(
                result.image, engine.render(cloud, camera).image
            )

    def test_unknown_class_is_400_and_connection_survives(
        self, scene, renderer
    ):
        cloud, cameras = scene

        async def body(service, gateway):
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                with pytest.raises(GatewayError) as excinfo:
                    await client.render_frame(
                        cloud, cameras[0], request_class="warp"
                    )
                assert excinfo.value.code == int(ErrorCode.BAD_REQUEST)
                # Nothing was admitted, nothing leaked, connection fine.
                assert gateway._pending == 0
                assert gateway.stats.rejected == 0
                return await client.render_frame(cloud, cameras[0])
            finally:
                await client.close()

        result = run_with_gateway(renderer, body)
        engine = RenderEngine(renderer)
        assert np.array_equal(
            result.image, engine.render(cloud, cameras[0]).image
        )

    def test_shed_429_carries_retry_after_hint(self, scene, renderer):
        """A shedding gateway answers 429 with the controller's
        deterministic hint; the protected class still gets through."""
        cloud, cameras = scene

        async def body(service, gateway):
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                gateway.admission.shed_level = 2  # as if interactive violated
                with pytest.raises(GatewayError) as excinfo:
                    await client.render_frame(cloud, cameras[0])  # bulk
                assert excinfo.value.code == int(ErrorCode.REJECTED)
                assert excinfo.value.retry_after_ms == 200  # 25 * 2**2 * 2
                assert gateway.stats.rejected == 1
                assert gateway.stats.errors == 0
                return await client.render_frame(
                    cloud, cameras[0], request_class="interactive"
                )
            finally:
                await client.close()

        result = run_with_gateway(renderer, body)
        engine = RenderEngine(renderer)
        assert np.array_equal(
            result.image, engine.render(cloud, cameras[0]).image
        )

    def test_http_class_param_and_429(self, scene, renderer):
        cloud, cameras = scene

        async def http_get(port, path):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
            await writer.drain()
            data = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, body = data.partition(b"\r\n\r\n")
            return int(head.split(b" ", 2)[1]), body

        async def body(service, gateway):
            gateway.register_scene("test", cloud, cameras)
            await gateway.start_http()
            port = gateway.http_port
            out = {}
            out["interactive"] = await http_get(
                port, "/render?scene=test&view=0&class=interactive"
            )
            out["unknown"] = await http_get(
                port, "/render?scene=test&view=0&class=warp"
            )
            gateway.admission.shed_level = 2
            out["shed"] = await http_get(port, "/render?scene=test&view=1")
            gateway.admission.shed_level = 0
            return out, dict(service.stats.class_requests), (
                gateway.stats.rejected,
                gateway._pending,
            )

        out, class_requests, (rejected, pending) = run_with_gateway(
            renderer, body
        )
        assert out["interactive"][0] == 200
        assert class_requests == {"interactive": 1}
        assert out["unknown"][0] == 400
        status, payload = out["shed"]
        assert status == 429
        assert json.loads(payload)["retry_after_ms"] == 200
        assert rejected == 1  # HTTP 429s count like TCP ones
        assert pending == 0

"""Tests for the asyncio render service.

The acceptance property of the serving layer, asserted here end to end:
under concurrent load with overlapping trajectories the service performs
**strictly fewer engine renders than it serves frames** (micro-batching
+ dedup + render cache), and **every** streamed frame is bit-identical
to a direct ``RenderEngine.render`` of the same view.

Plain ``asyncio.run`` drivers — no async test plugin required.
"""

import asyncio

import numpy as np
import pytest

from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.gaussians.camera import Camera
from repro.serve import RenderService, SharedRenderCache, run_clients
from repro.tiles.boundary import BoundaryMethod
from tests.conftest import make_cloud


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(23)
    cloud = make_cloud(40, rng)
    cameras = [
        Camera(width=96, height=64, fx=80.0 + i, fy=80.0 + i) for i in range(8)
    ]
    return cloud, cameras


@pytest.fixture(scope="module")
def renderer():
    return GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)


@pytest.fixture(scope="module")
def reference(scene, renderer):
    cloud, cameras = scene
    engine = RenderEngine(renderer)
    return [engine.render(cloud, camera) for camera in cameras]


class TestSingleRequests:
    def test_frame_bit_identical(self, scene, renderer, reference):
        cloud, cameras = scene

        async def main():
            async with RenderService(renderer) as service:
                return await service.render_frame(cloud, cameras[0])

        result = asyncio.run(main())
        assert np.array_equal(result.image, reference[0].image)
        assert result.stats == reference[0].stats

    def test_stream_yields_in_order(self, scene, renderer, reference):
        cloud, cameras = scene

        async def main():
            async with RenderService(renderer, max_wait=0.001) as service:
                indices, results = [], []
                async for index, result in service.stream_trajectory(
                    cloud, cameras
                ):
                    indices.append(index)
                    results.append(result)
                return indices, results

        indices, results = asyncio.run(main())
        assert indices == list(range(len(cameras)))
        for result, ref in zip(results, reference):
            assert np.array_equal(result.image, ref.image)
            assert result.stats == ref.stats


class TestConcurrentLoad:
    def test_overlapping_clients_fewer_renders_bit_identical(
        self, scene, renderer, reference
    ):
        """The acceptance criterion: 8 clients x 8 overlapping frames ->
        strictly fewer engine renders than streamed frames, all frames
        bit-identical to direct renders."""
        cloud, cameras = scene

        async def main():
            with SharedRenderCache() as cache:
                async with RenderService(
                    renderer, cache=cache, max_batch_size=4, max_wait=0.005
                ) as service:
                    return await run_clients(
                        service, cloud, [list(cameras)] * 8, keep_images=True
                    )

        report = asyncio.run(main())
        assert report.frames == 8 * len(cameras)
        stats = report.service
        assert stats["requests"] == report.frames
        assert stats["engine_renders"] < report.frames  # strictly fewer
        assert stats["engine_renders"] >= len(cameras)  # every view once
        assert stats["coalesced"] + stats["cache_hits"] > 0
        for client_images in report.images:
            for image, ref in zip(client_images, reference):
                assert np.array_equal(image, ref.image)

    def test_cache_serves_across_service_instances(self, scene, renderer, reference):
        """A second service over the same shared cache renders nothing."""
        cloud, cameras = scene

        async def serve_once(cache):
            async with RenderService(
                renderer, cache=cache, max_batch_size=4, max_wait=0.002
            ) as service:
                results = await service.render_trajectory(cloud, cameras)
                return results, service.stats_dict()

        async def main():
            with SharedRenderCache() as cache:
                first, first_stats = await serve_once(cache)
                second, second_stats = await serve_once(cache)
                return first, first_stats, second, second_stats

        first, first_stats, second, second_stats = asyncio.run(main())
        assert first_stats["engine_renders"] == len(cameras)
        assert second_stats["engine_renders"] == 0
        assert second_stats["cache_hits"] == len(cameras)
        for result, ref in zip(second, reference):
            assert np.array_equal(result.image, ref.image)
            assert result.stats == ref.stats

    def test_distinct_scenes_use_distinct_lanes(self, renderer):
        rng = np.random.default_rng(29)
        cloud_a = make_cloud(30, rng)
        cloud_b = make_cloud(30, rng)
        camera = Camera(width=96, height=64, fx=85.0, fy=85.0)

        async def main():
            async with RenderService(renderer, max_wait=0.005) as service:
                res_a, res_b = await asyncio.gather(
                    service.render_frame(cloud_a, camera),
                    service.render_frame(cloud_b, camera),
                )
                return res_a, res_b

        res_a, res_b = asyncio.run(main())
        engine = RenderEngine(renderer)
        assert np.array_equal(res_a.image, engine.render(cloud_a, camera).image)
        assert np.array_equal(res_b.image, engine.render(cloud_b, camera).image)


class TestBackpressureAndCancellation:
    def test_tiny_admission_bound_still_completes(self, scene, renderer, reference):
        cloud, cameras = scene

        async def main():
            async with RenderService(
                renderer, max_pending=1, max_batch_size=2, max_wait=0.001
            ) as service:
                return await run_clients(
                    service, cloud, [list(cameras)] * 2, keep_images=True
                )

        report = asyncio.run(main())
        assert report.frames == 2 * len(cameras)
        for client_images in report.images:
            for image, ref in zip(client_images, reference):
                assert np.array_equal(image, ref.image)

    def test_early_stream_close_cancels_outstanding(self, scene, renderer):
        cloud, cameras = scene

        async def main():
            async with RenderService(
                renderer, max_batch_size=2, max_wait=0.001
            ) as service:
                seen = 0
                async for index, _ in service.stream_trajectory(cloud, cameras):
                    seen += 1
                    if seen == 2:
                        break
                # The service stays usable after an abandoned stream.
                result = await service.render_frame(cloud, cameras[0])
                return seen, result, service.stats_dict()

        seen, result, stats = asyncio.run(main())
        assert seen == 2
        assert result is not None
        # Never more engine work than the full trajectory would cost.
        assert stats["engine_renders"] <= len(cameras)

    def test_cancelled_single_waiter_cancels_render(self, scene, renderer):
        cloud, cameras = scene

        async def main():
            async with RenderService(
                renderer, max_batch_size=8, max_wait=0.2
            ) as service:
                task = asyncio.ensure_future(
                    service.render_frame(cloud, cameras[0])
                )
                await asyncio.sleep(0.01)  # submitted, waiting on batch timer
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                await service.close()
                return service.stats_dict()

        stats = asyncio.run(main())
        assert stats["engine_renders"] == 0
        assert stats["cancelled"] == 1

    def test_rerequest_after_sole_waiter_cancelled(self, scene, renderer, reference):
        """A request arriving right after the previous sole waiter
        cancelled the same view must get a fresh render, not the dying
        entry's CancelledError (the entry is dropped synchronously)."""
        cloud, cameras = scene

        async def main():
            async with RenderService(
                renderer, max_batch_size=8, max_wait=0.05
            ) as service:
                first = asyncio.ensure_future(
                    service.render_frame(cloud, cameras[0])
                )
                await asyncio.sleep(0.005)  # pending on the batch timer
                first.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await first
                # Immediately re-request the same view: the cancelled
                # in-flight task has not settled through the event loop
                # yet, but the new request must not inherit it.
                return await service.render_frame(cloud, cameras[0])

        result = asyncio.run(main())
        assert np.array_equal(result.image, reference[0].image)

    def test_validation(self, renderer):
        with pytest.raises(ValueError):
            RenderService(renderer, max_pending=0)
        with pytest.raises(ValueError):
            RenderService(renderer, batch_workers=0)
        with pytest.raises(ValueError):
            RenderService(renderer, batch_executor="carrier-pigeon")


class TestBatchWorkerPools:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pooled_batches_bit_identical(
        self, scene, renderer, reference, executor
    ):
        """batch_workers > 1 renders each flush across a persistent pool;
        frames and stats stay bit-identical and the pools close with the
        service."""
        cloud, cameras = scene

        async def main():
            service = RenderService(
                renderer,
                max_batch_size=4,
                max_wait=0.002,
                batch_workers=2,
                batch_executor=executor,
            )
            async with service:
                results = await service.render_trajectory(cloud, cameras)
            return results, service

        results, service = asyncio.run(main())
        for result, ref in zip(results, reference):
            assert np.array_equal(result.image, ref.image)
            assert result.stats == ref.stats
        assert service._pools == {}  # close() released the lane pools

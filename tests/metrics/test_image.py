"""Unit tests for MSE / PSNR / SSIM."""

import numpy as np
import pytest

from repro.metrics import mse, psnr, ssim


@pytest.fixture
def image(rng):
    return rng.random((32, 40, 3))


class TestMSE:
    def test_identical_images_zero(self, image):
        assert mse(image, image) == 0.0

    def test_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.5)
        assert mse(a, b) == pytest.approx(0.25)

    def test_symmetry(self, image, rng):
        other = rng.random(image.shape)
        assert mse(image, other) == pytest.approx(mse(other, image))

    def test_shape_mismatch_rejected(self, image):
        with pytest.raises(ValueError):
            mse(image, image[:-1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((0, 3)), np.zeros((0, 3)))


class TestPSNR:
    def test_identical_is_infinite(self, image):
        assert psnr(image, image) == float("inf")

    def test_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.1)
        # mse = 0.01, psnr = 10 log10(1/0.01) = 20 dB.
        assert psnr(a, b) == pytest.approx(20.0)

    def test_peak_scaling(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 25.5)
        assert psnr(a, b, peak=255.0) == pytest.approx(20.0)

    def test_monotone_in_noise(self, image, rng):
        small = image + rng.normal(0, 0.01, image.shape)
        large = image + rng.normal(0, 0.1, image.shape)
        assert psnr(image, small) > psnr(image, large)

    def test_invalid_peak_rejected(self, image):
        with pytest.raises(ValueError):
            psnr(image, image, peak=0.0)


class TestSSIM:
    def test_identical_is_one(self, image):
        assert ssim(image, image) == pytest.approx(1.0)

    def test_bounded(self, image, rng):
        noisy = np.clip(image + rng.normal(0, 0.2, image.shape), 0, 1)
        value = ssim(image, noisy)
        assert -1.0 <= value < 1.0

    def test_monotone_in_noise(self, image, rng):
        small = np.clip(image + rng.normal(0, 0.02, image.shape), 0, 1)
        large = np.clip(image + rng.normal(0, 0.3, image.shape), 0, 1)
        assert ssim(image, small) > ssim(image, large)

    def test_grayscale_supported(self, rng):
        a = rng.random((24, 24))
        assert ssim(a, a) == pytest.approx(1.0)

    def test_constant_images(self):
        a = np.full((16, 16), 0.5)
        assert ssim(a, a) == pytest.approx(1.0)

    def test_too_small_image_rejected(self):
        a = np.zeros((8, 8))
        with pytest.raises(ValueError):
            ssim(a, a)

    def test_structural_sensitivity(self, rng):
        """SSIM penalises structural change more than uniform offset."""
        base = np.tile(np.linspace(0, 1, 32), (32, 1))
        offset = np.clip(base + 0.05, 0, 1)
        shuffled = rng.permutation(base.ravel()).reshape(base.shape)
        assert ssim(base, offset) > ssim(base, shuffled)

"""Test package."""

"""Unit tests for the GPU timing model."""

import pytest

from repro.analysis.gpu_model import (
    GPUCostModel,
    baseline_frame_times,
    gstg_frame_times,
)
from repro.raster.stats import RenderStats


def _stats(
    *,
    inputs=100,
    visible=80,
    tests=50,
    test_cost=1.0,
    pairs=200,
    sorts=4,
    keys=200,
    comparisons=1000.0,
    alphas=5000,
    blends=2000,
    bitmask_tests=0,
    bitmask_cost=1.0,
    bitmasks=0,
    filters=0,
):
    s = RenderStats()
    s.preprocess.num_input_gaussians = inputs
    s.preprocess.num_visible_gaussians = visible
    s.preprocess.num_boundary_tests = tests
    s.preprocess.boundary_test_cost = test_cost
    s.preprocess.num_pairs = pairs
    s.sort.num_sorts = sorts
    s.sort.num_keys = keys
    s.sort.num_comparisons = comparisons
    s.raster.num_alpha_computations = alphas
    s.raster.num_blend_operations = blends
    s.bitmask_tests = bitmask_tests
    s.bitmask_test_cost = bitmask_cost
    s.num_bitmasks = bitmasks
    s.num_filter_checks = filters
    return s


class TestBaselineTimes:
    def test_manual_accounting(self):
        m = GPUCostModel(
            feature_ns=10, cull_ns=1, range_ns=2, boundary_test_ns=3,
            pair_emit_ns=4, sort_compare_ns=1, sort_key_ns=2, alpha_ns=1,
            blend_ns=0.5, filter_ns=0.1, sort_launch_ns=100,
        )
        s = _stats()
        t = baseline_frame_times(s, m)
        expected_pre = (100 * 1 + 80 * (10 + 2) + 50 * 3 * 1.0 + 200 * 4) / 1e6
        expected_sort = (1000 * 1 + 200 * 2 + 4 * 100) / 1e6
        expected_raster = (5000 * 1 + 2000 * 0.5) / 1e6
        assert t.preprocessing == pytest.approx(expected_pre)
        assert t.sorting == pytest.approx(expected_sort)
        assert t.rasterization == pytest.approx(expected_raster)
        assert t.total == pytest.approx(expected_pre + expected_sort + expected_raster)

    def test_method_cost_multiplies_tests(self):
        cheap = baseline_frame_times(_stats(test_cost=1.0))
        costly = baseline_frame_times(_stats(test_cost=6.0))
        assert costly.preprocessing > cheap.preprocessing
        assert costly.sorting == cheap.sorting

    def test_more_alphas_cost_more(self):
        a = baseline_frame_times(_stats(alphas=1000))
        b = baseline_frame_times(_stats(alphas=100000))
        assert b.rasterization > a.rasterization


class TestGstgTimes:
    def test_bitmask_charged_to_preprocessing_on_gpu(self):
        without = gstg_frame_times(_stats())
        with_masks = gstg_frame_times(_stats(bitmask_tests=10000, bitmask_cost=6.0))
        assert with_masks.preprocessing > without.preprocessing
        assert with_masks.sorting == without.sorting

    def test_bitmask_hidden_when_overlapped(self):
        s = _stats(bitmask_tests=100, bitmask_cost=1.0, comparisons=1e6)
        gpu = gstg_frame_times(s, overlap_bitmask=False)
        accel = gstg_frame_times(s, overlap_bitmask=True)
        # Sorting dominates the bitmask work, so overlapping hides it all.
        assert accel.preprocessing < gpu.preprocessing
        assert accel.sorting == gpu.sorting

    def test_overlap_takes_max(self):
        # Huge bitmask load, tiny sorting: the sort stage becomes the
        # bitmask time under overlap.
        m = GPUCostModel()
        s = _stats(bitmask_tests=10_000_000, bitmask_cost=1.0, comparisons=0.0,
                   keys=0, sorts=0)
        t = gstg_frame_times(s, m, overlap_bitmask=True)
        assert t.sorting == pytest.approx(10_000_000 * m.boundary_test_ns / 1e6)

    def test_filter_checks_charged_to_raster(self):
        a = gstg_frame_times(_stats(filters=0))
        b = gstg_frame_times(_stats(filters=1_000_000))
        assert b.rasterization > a.rasterization
        assert b.preprocessing == a.preprocessing

    def test_defaults_are_positive(self):
        m = GPUCostModel()
        for field in (
            m.feature_ns, m.cull_ns, m.range_ns, m.boundary_test_ns,
            m.pair_emit_ns, m.sort_compare_ns, m.sort_key_ns, m.alpha_ns,
            m.blend_ns, m.filter_ns, m.sort_launch_ns,
        ):
            assert field > 0

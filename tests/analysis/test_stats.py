"""Unit tests for the Section III profiling statistics."""

import numpy as np
import pytest

from repro.analysis.stats import (
    gaussians_per_pixel,
    shared_fraction,
    tile_statistics,
    tiles_per_gaussian,
)
from repro.tiles.boundary import BoundaryMethod
from repro.tiles.grid import TileGrid
from repro.tiles.identify import TileAssignment, identify_tiles


def _manual_assignment(grid, pairs, num_gaussians):
    gauss = np.array([p[0] for p in pairs], dtype=np.int64)
    tiles = np.array([p[1] for p in pairs], dtype=np.int64)
    return TileAssignment(
        grid=grid,
        method=BoundaryMethod.AABB,
        gaussian_ids=gauss,
        tile_ids=tiles,
        num_gaussians=num_gaussians,
    )


class TestManualCases:
    def test_tiles_per_gaussian_mean_over_active(self):
        grid = TileGrid(32, 32, 16)  # 4 tiles
        # gaussian 0 -> 3 tiles, gaussian 1 -> 1 tile, gaussian 2 -> none.
        a = _manual_assignment(grid, [(0, 0), (0, 1), (0, 2), (1, 3)], 3)
        assert tiles_per_gaussian(a) == pytest.approx(2.0)

    def test_shared_fraction_counts_multi_tile(self):
        grid = TileGrid(32, 32, 16)
        a = _manual_assignment(grid, [(0, 0), (0, 1), (1, 3)], 2)
        assert shared_fraction(a) == pytest.approx(0.5)

    def test_gaussians_per_pixel_weighted(self):
        grid = TileGrid(32, 32, 16)  # 4 equal tiles of 256 px
        a = _manual_assignment(grid, [(0, 0), (1, 0), (2, 1)], 3)
        # tile 0 has 2 gaussians, tile 1 has 1, tiles 2,3 have 0.
        expected = (2 * 256 + 1 * 256) / (32 * 32)
        assert gaussians_per_pixel(a) == pytest.approx(expected)

    def test_empty_assignment(self):
        grid = TileGrid(32, 32, 16)
        a = _manual_assignment(grid, [], 0)
        assert tiles_per_gaussian(a) == 0.0
        assert shared_fraction(a) == 0.0
        assert gaussians_per_pixel(a) == 0.0

    def test_clipped_tiles_weighted_less(self):
        grid = TileGrid(20, 16, 16)  # tile 0: 256 px, tile 1: 4x16=64 px
        a = _manual_assignment(grid, [(0, 1)], 1)
        assert gaussians_per_pixel(a) == pytest.approx(64 / (20 * 16))


class TestPaperTrends:
    """The Section III monotonicities on a real projected cloud."""

    @pytest.fixture
    def assignments(self, projected, camera):
        return {
            ts: identify_tiles(
                projected,
                TileGrid(camera.width, camera.height, ts),
                BoundaryMethod.AABB,
            )
            for ts in (8, 16, 32)
        }

    def test_tiles_per_gaussian_decreases_with_tile_size(self, assignments):
        values = [tiles_per_gaussian(assignments[ts]) for ts in (8, 16, 32)]
        assert values[0] >= values[1] >= values[2]

    def test_shared_fraction_decreases_with_tile_size(self, assignments):
        values = [shared_fraction(assignments[ts]) for ts in (8, 16, 32)]
        assert values[0] >= values[1] >= values[2]

    def test_gaussians_per_pixel_increases_with_tile_size(self, assignments):
        values = [gaussians_per_pixel(assignments[ts]) for ts in (8, 16, 32)]
        assert values[0] <= values[1] <= values[2]

    def test_bundle_matches_parts(self, assignments):
        stats = tile_statistics(assignments[16])
        assert stats.tile_size == 16
        assert stats.method == "aabb"
        assert stats.tiles_per_gaussian == tiles_per_gaussian(assignments[16])
        assert stats.shared_fraction == shared_fraction(assignments[16])
        assert stats.num_pairs == assignments[16].num_pairs

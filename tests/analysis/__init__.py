"""Test package."""

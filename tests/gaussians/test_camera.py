"""Unit tests for the pinhole camera model."""

import numpy as np
import pytest

from repro.gaussians.camera import Camera, look_at


class TestCameraValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            Camera(width=0, height=10, fx=1.0, fy=1.0)

    def test_rejects_bad_focals(self):
        with pytest.raises(ValueError):
            Camera(width=10, height=10, fx=-1.0, fy=1.0)

    def test_rejects_bad_clip_planes(self):
        with pytest.raises(ValueError):
            Camera(width=10, height=10, fx=1.0, fy=1.0, near=5.0, far=1.0)

    def test_rejects_non_orthonormal_rotation(self):
        with pytest.raises(ValueError):
            Camera(width=10, height=10, fx=1.0, fy=1.0, rotation=np.ones((3, 3)))


class TestCameraGeometry:
    def test_identity_pose_position_is_origin(self, camera):
        assert np.allclose(camera.position, 0.0)

    def test_centre_point_projects_to_principal_point(self, camera):
        uv = camera.project_points(np.array([[0.0, 0.0, 5.0]]))
        assert np.allclose(uv, [[camera.cx, camera.cy]])

    def test_projection_scales_with_focal(self, camera):
        uv = camera.project_points(np.array([[1.0, 0.0, 2.0]]))
        assert np.allclose(uv[0, 0] - camera.cx, camera.fx / 2.0)

    def test_world_to_camera_identity(self, camera):
        pts = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(camera.world_to_camera(pts), pts)

    def test_world_to_camera_translation(self):
        cam = Camera(
            width=10, height=10, fx=5.0, fy=5.0, translation=np.array([1.0, 0.0, 0.0])
        )
        out = cam.world_to_camera(np.array([[0.0, 0.0, 0.0]]))
        assert np.allclose(out, [[1.0, 0.0, 0.0]])

    def test_tan_half_fov(self, camera):
        assert camera.tan_half_fov_x == pytest.approx(64 / (2 * 60.0))
        assert camera.tan_half_fov_y == pytest.approx(48 / (2 * 60.0))

    def test_rejects_bad_point_shape(self, camera):
        with pytest.raises(ValueError):
            camera.world_to_camera(np.zeros((3, 2)))


class TestLookAt:
    def test_target_projects_to_image_centre(self, lookat_camera):
        target = np.array([[0.0, 0.0, 6.0]])
        cam_pts = lookat_camera.world_to_camera(target)
        uv = lookat_camera.project_points(cam_pts)
        assert np.allclose(uv, [[lookat_camera.cx, lookat_camera.cy]], atol=1e-9)

    def test_target_depth_positive(self, lookat_camera):
        cam_pts = lookat_camera.world_to_camera(np.array([[0.0, 0.0, 6.0]]))
        assert cam_pts[0, 2] > 0.0

    def test_position_is_eye(self, lookat_camera):
        assert np.allclose(lookat_camera.position, [4.0, 3.0, -6.0])

    def test_rejects_coincident_eye_target(self):
        with pytest.raises(ValueError):
            look_at([0, 0, 0], [0, 0, 0], width=10, height=10)

    def test_rejects_parallel_up(self):
        with pytest.raises(ValueError):
            look_at([0, 0, 0], [0, 1, 0], up=(0, 1, 0), width=10, height=10)

    def test_square_pixels(self, lookat_camera):
        assert lookat_camera.fx == pytest.approx(lookat_camera.fy)

    def test_fov_sets_focal(self):
        cam = look_at([0, 0, -5], [0, 0, 0], width=100, height=100, fov_y_degrees=90.0)
        assert cam.fy == pytest.approx(50.0)

"""Test package."""

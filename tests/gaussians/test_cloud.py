"""Unit tests for the GaussianCloud container."""

import numpy as np
import pytest

from repro.gaussians.cloud import GaussianCloud
from tests.conftest import make_cloud


class TestValidation:
    def test_len(self, small_cloud):
        assert len(small_cloud) == 60

    def test_sh_degree(self, small_cloud):
        assert small_cloud.sh_degree == 1

    def test_rejects_mismatched_scales(self, rng):
        cloud = make_cloud(5, rng)
        with pytest.raises(ValueError):
            GaussianCloud(
                positions=cloud.positions,
                scales=cloud.scales[:3],
                rotations=cloud.rotations,
                opacities=cloud.opacities,
                sh_coeffs=cloud.sh_coeffs,
            )

    def test_rejects_negative_scales(self, rng):
        cloud = make_cloud(5, rng)
        bad = cloud.scales.copy()
        bad[0, 0] = -1.0
        with pytest.raises(ValueError):
            GaussianCloud(cloud.positions, bad, cloud.rotations, cloud.opacities, cloud.sh_coeffs)

    def test_rejects_out_of_range_opacity(self, rng):
        cloud = make_cloud(5, rng)
        bad = cloud.opacities.copy()
        bad[0] = 1.5
        with pytest.raises(ValueError):
            GaussianCloud(cloud.positions, cloud.scales, cloud.rotations, bad, cloud.sh_coeffs)

    def test_rejects_bad_sh_count(self, rng):
        cloud = make_cloud(5, rng)
        with pytest.raises(ValueError):
            GaussianCloud(
                cloud.positions,
                cloud.scales,
                cloud.rotations,
                cloud.opacities,
                np.zeros((5, 5, 3)),
            )

    def test_rotations_normalised_on_construction(self, rng):
        cloud = make_cloud(5, rng)
        scaled = GaussianCloud(
            cloud.positions,
            cloud.scales,
            cloud.rotations * 3.0,
            cloud.opacities,
            cloud.sh_coeffs,
        )
        assert np.allclose(np.linalg.norm(scaled.rotations, axis=1), 1.0)


class TestOperations:
    def test_covariances_shape(self, small_cloud):
        cov = small_cloud.covariances_3d()
        assert cov.shape == (len(small_cloud), 3, 3)

    def test_subset_preserves_rows(self, small_cloud):
        idx = np.array([3, 7, 11])
        sub = small_cloud.subset(idx)
        assert len(sub) == 3
        assert np.array_equal(sub.positions, small_cloud.positions[idx])
        assert np.array_equal(sub.opacities, small_cloud.opacities[idx])

    def test_subset_with_mask(self, small_cloud):
        mask = np.zeros(len(small_cloud), dtype=bool)
        mask[:10] = True
        assert len(small_cloud.subset(mask)) == 10

    def test_concatenate_lengths(self, rng):
        a = make_cloud(4, rng)
        b = make_cloud(6, rng)
        merged = GaussianCloud.concatenate([a, b])
        assert len(merged) == 10
        assert np.array_equal(merged.positions[:4], a.positions)

    def test_concatenate_empty_list_rejected(self):
        with pytest.raises(ValueError):
            GaussianCloud.concatenate([])

    def test_concatenate_mixed_degrees_rejected(self, rng):
        a = make_cloud(4, rng, sh_degree=0)
        b = make_cloud(4, rng, sh_degree=1)
        with pytest.raises(ValueError):
            GaussianCloud.concatenate([a, b])

"""Unit tests for spherical-harmonics colour evaluation."""

import numpy as np
import pytest

from repro.gaussians.sh import MAX_SH_DEGREE, evaluate_sh, num_sh_coeffs

_C0 = 0.28209479177387814


class TestNumShCoeffs:
    @pytest.mark.parametrize("degree,expected", [(0, 1), (1, 4), (2, 9), (3, 16)])
    def test_counts(self, degree, expected):
        assert num_sh_coeffs(degree) == expected

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            num_sh_coeffs(MAX_SH_DEGREE + 1)
        with pytest.raises(ValueError):
            num_sh_coeffs(-1)


class TestEvaluateSh:
    def test_degree0_is_direction_independent(self):
        coeffs = np.zeros((2, 1, 3))
        coeffs[:, 0] = [[1.0, 2.0, 3.0], [0.5, 0.5, 0.5]]
        d1 = np.array([[0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
        d2 = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, -1.0]])
        assert np.allclose(evaluate_sh(coeffs, d1), evaluate_sh(coeffs, d2))

    def test_degree0_value(self):
        coeffs = np.zeros((1, 1, 3))
        coeffs[0, 0] = [1.0, 1.0, 1.0]
        out = evaluate_sh(coeffs, np.array([[0.0, 0.0, 1.0]]))
        assert np.allclose(out, _C0 * 1.0 + 0.5)

    def test_clamped_non_negative(self):
        coeffs = np.zeros((1, 1, 3))
        coeffs[0, 0] = [-100.0, -100.0, -100.0]
        out = evaluate_sh(coeffs, np.array([[0.0, 0.0, 1.0]]))
        assert np.all(out == 0.0)

    def test_degree1_varies_with_direction(self):
        coeffs = np.zeros((1, 4, 3))
        coeffs[0, 2] = [1.0, 1.0, 1.0]  # z-linear band
        plus = evaluate_sh(coeffs, np.array([[0.0, 0.0, 1.0]]))
        minus = evaluate_sh(coeffs, np.array([[0.0, 0.0, -1.0]]))
        assert not np.allclose(plus, minus)

    def test_direction_normalisation_irrelevant(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(size=(5, 9, 3))
        d = rng.normal(size=(5, 3))
        assert np.allclose(evaluate_sh(coeffs, d), evaluate_sh(coeffs, 10.0 * d))

    @pytest.mark.parametrize("k", [1, 4, 9, 16])
    def test_all_degrees_evaluate(self, k):
        rng = np.random.default_rng(k)
        coeffs = rng.normal(size=(7, k, 3))
        d = rng.normal(size=(7, 3))
        out = evaluate_sh(coeffs, d)
        assert out.shape == (7, 3)
        assert np.all(np.isfinite(out))
        assert np.all(out >= 0.0)

    def test_rejects_non_square_count(self):
        with pytest.raises(ValueError):
            evaluate_sh(np.zeros((1, 5, 3)), np.array([[0.0, 0.0, 1.0]]))

    def test_rejects_mismatched_directions(self):
        with pytest.raises(ValueError):
            evaluate_sh(np.zeros((2, 4, 3)), np.zeros((3, 3)))

    def test_degree3_band_antisymmetry(self):
        # The l=3, m=0-ish band z(2z^2-3x^2-3y^2) flips sign with z.
        # Small coefficient keeps both directions clear of the >= 0 clamp.
        coeffs = np.zeros((1, 16, 3))
        coeffs[0, 12] = [0.3, 0.3, 0.3]
        up = evaluate_sh(coeffs, np.array([[0.0, 0.0, 1.0]]))
        down = evaluate_sh(coeffs, np.array([[0.0, 0.0, -1.0]]))
        # Symmetric around the +0.5 offset before clamping.
        assert np.allclose((up - 0.5) + (down - 0.5), 0.0, atol=1e-12)

"""Unit tests for quaternion utilities."""

import numpy as np
import pytest

from repro.gaussians.rotation import (
    normalize_quaternions,
    quaternion_to_rotation_matrix,
    random_unit_quaternions,
)


class TestNormalizeQuaternions:
    def test_unit_quaternions_unchanged(self):
        q = np.array([[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0]])
        assert np.allclose(normalize_quaternions(q), q)

    def test_scaling_removed(self):
        q = np.array([[2.0, 0.0, 0.0, 0.0]])
        assert np.allclose(normalize_quaternions(q), [[1.0, 0.0, 0.0, 0.0]])

    def test_zero_quaternion_becomes_identity(self):
        q = np.zeros((1, 4))
        assert np.allclose(normalize_quaternions(q), [[1.0, 0.0, 0.0, 0.0]])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            normalize_quaternions(np.zeros((3, 3)))

    def test_norms_are_one(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(100, 4))
        out = normalize_quaternions(q)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)


class TestQuaternionToRotation:
    def test_identity(self):
        rot = quaternion_to_rotation_matrix(np.array([[1.0, 0.0, 0.0, 0.0]]))
        assert np.allclose(rot[0], np.eye(3))

    def test_90_degrees_about_z(self):
        half = np.sqrt(0.5)
        rot = quaternion_to_rotation_matrix(np.array([[half, 0.0, 0.0, half]]))
        # Rotating x-axis by 90 deg about z gives y-axis.
        assert np.allclose(rot[0] @ [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], atol=1e-12)

    def test_orthonormality(self):
        rng = np.random.default_rng(7)
        rot = quaternion_to_rotation_matrix(rng.normal(size=(50, 4)))
        eye = np.einsum("nij,nkj->nik", rot, rot)
        assert np.allclose(eye, np.eye(3)[None], atol=1e-10)

    def test_determinant_is_plus_one(self):
        rng = np.random.default_rng(8)
        rot = quaternion_to_rotation_matrix(rng.normal(size=(50, 4)))
        assert np.allclose(np.linalg.det(rot), 1.0, atol=1e-10)

    def test_q_and_minus_q_same_rotation(self):
        rng = np.random.default_rng(9)
        q = rng.normal(size=(10, 4))
        assert np.allclose(
            quaternion_to_rotation_matrix(q), quaternion_to_rotation_matrix(-q)
        )


class TestRandomUnitQuaternions:
    def test_unit_norm(self):
        rng = np.random.default_rng(3)
        q = random_unit_quaternions(500, rng)
        assert np.allclose(np.linalg.norm(q, axis=1), 1.0)

    def test_deterministic_given_seed(self):
        a = random_unit_quaternions(10, np.random.default_rng(5))
        b = random_unit_quaternions(10, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_zero_count(self):
        assert random_unit_quaternions(0, np.random.default_rng(0)).shape == (0, 4)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            random_unit_quaternions(-1, np.random.default_rng(0))

"""Unit tests for 3D covariance assembly."""

import numpy as np
import pytest

from repro.gaussians.covariance import build_3d_covariances


class TestBuild3DCovariances:
    def test_identity_rotation_gives_diagonal(self):
        scales = np.array([[1.0, 2.0, 3.0]])
        quats = np.array([[1.0, 0.0, 0.0, 0.0]])
        cov = build_3d_covariances(scales, quats)
        assert np.allclose(cov[0], np.diag([1.0, 4.0, 9.0]))

    def test_symmetric(self):
        rng = np.random.default_rng(2)
        cov = build_3d_covariances(
            rng.uniform(0.1, 2.0, (30, 3)), rng.normal(size=(30, 4))
        )
        assert np.allclose(cov, np.transpose(cov, (0, 2, 1)))

    def test_positive_definite(self):
        rng = np.random.default_rng(3)
        cov = build_3d_covariances(
            rng.uniform(0.1, 2.0, (30, 3)), rng.normal(size=(30, 4))
        )
        eigvals = np.linalg.eigvalsh(cov)
        assert np.all(eigvals > 0.0)

    def test_eigenvalues_are_squared_scales(self):
        rng = np.random.default_rng(4)
        scales = np.array([[0.5, 1.5, 2.5]])
        cov = build_3d_covariances(scales, rng.normal(size=(1, 4)))
        eigvals = np.sort(np.linalg.eigvalsh(cov[0]))
        assert np.allclose(eigvals, np.sort(scales[0] ** 2), rtol=1e-10)

    def test_rotation_invariance_of_trace(self):
        rng = np.random.default_rng(5)
        scales = np.tile([[1.0, 2.0, 3.0]], (20, 1))
        cov = build_3d_covariances(scales, rng.normal(size=(20, 4)))
        assert np.allclose(np.trace(cov, axis1=1, axis2=2), 14.0)

    def test_rejects_nonpositive_scales(self):
        with pytest.raises(ValueError):
            build_3d_covariances(np.array([[1.0, 0.0, 1.0]]), np.array([[1, 0, 0, 0]]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            build_3d_covariances(np.ones((2, 3)), np.ones((3, 4)))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            build_3d_covariances(np.ones((2, 2)), np.ones((2, 4)))

"""Unit tests for EWA projection."""

import numpy as np
import pytest

from repro.gaussians.cloud import GaussianCloud
from repro.gaussians.projection import COV2D_BLUR, SIGMA_EXTENT, project
from repro.gaussians.culling import cull
from tests.conftest import make_cloud


def _isotropic_cloud(scale, depth, opacity=0.9):
    return GaussianCloud(
        positions=np.array([[0.0, 0.0, depth]]),
        scales=np.full((1, 3), scale),
        rotations=np.array([[1.0, 0.0, 0.0, 0.0]]),
        opacities=np.array([opacity]),
        sh_coeffs=np.zeros((1, 1, 3)),
    )


class TestProjectGeometry:
    def test_centre_projects_to_principal_point(self, camera):
        proj = project(_isotropic_cloud(0.1, 5.0), camera)
        assert np.allclose(proj.means2d, [[camera.cx, camera.cy]])

    def test_depth_recorded(self, camera):
        proj = project(_isotropic_cloud(0.1, 5.0), camera)
        assert proj.depths[0] == pytest.approx(5.0)

    def test_isotropic_cov2d(self, camera):
        # An isotropic Gaussian on the optical axis projects to an
        # isotropic 2D Gaussian with variance (f*s/z)^2 + blur.
        s, z = 0.2, 5.0
        proj = project(_isotropic_cloud(s, z), camera)
        expected = (camera.fx * s / z) ** 2 + COV2D_BLUR
        assert proj.cov2d[0, 0, 0] == pytest.approx(expected, rel=1e-6)
        assert proj.cov2d[0, 1, 1] == pytest.approx(expected, rel=1e-6)
        assert proj.cov2d[0, 0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_radius_is_three_sigma(self, camera):
        s, z = 0.2, 5.0
        proj = project(_isotropic_cloud(s, z), camera)
        sigma = np.sqrt((camera.fx * s / z) ** 2 + COV2D_BLUR)
        assert proj.radii[0] == pytest.approx(SIGMA_EXTENT * sigma, rel=1e-6)

    def test_farther_gaussian_smaller(self, camera):
        near = project(_isotropic_cloud(0.2, 4.0), camera)
        far = project(_isotropic_cloud(0.2, 10.0), camera)
        assert far.radii[0] < near.radii[0]

    def test_conic_is_inverse_of_cov(self, projected):
        for i in range(len(projected)):
            a, b, c = projected.conics[i]
            inv = np.array([[a, b], [b, c]])
            assert np.allclose(
                inv @ projected.cov2d[i], np.eye(2), atol=1e-6
            )

    def test_eigvals_descending_positive(self, projected):
        assert np.all(projected.eigvals[:, 0] >= projected.eigvals[:, 1])
        assert np.all(projected.eigvals[:, 1] > 0.0)

    def test_eigvecs_orthonormal(self, projected):
        prod = np.einsum("nij,nik->njk", projected.eigvecs, projected.eigvecs)
        assert np.allclose(prod, np.eye(2)[None], atol=1e-9)

    def test_eigendecomposition_reconstructs_cov(self, projected):
        recon = np.einsum(
            "nij,nj,nkj->nik",
            projected.eigvecs,
            projected.eigvals,
            projected.eigvecs,
        )
        assert np.allclose(recon, projected.cov2d, atol=1e-8)


class TestProjectBookkeeping:
    def test_only_visible_projected(self, rng, camera):
        cloud = make_cloud(100, rng, depth_range=(-5.0, 20.0))
        culling = cull(cloud, camera)
        proj = project(cloud, camera)
        assert len(proj) == culling.num_visible
        assert np.array_equal(proj.indices, np.flatnonzero(culling.visible))

    def test_precomputed_culling_respected(self, rng, camera):
        cloud = make_cloud(50, rng)
        culling = cull(cloud, camera)
        proj = project(cloud, camera, culling)
        assert len(proj) == culling.num_visible

    def test_mismatched_culling_rejected(self, rng, camera):
        cloud = make_cloud(50, rng)
        other = cull(make_cloud(10, rng), camera)
        with pytest.raises(ValueError):
            project(cloud, camera, other)

    def test_opacities_copied(self, rng, camera):
        cloud = make_cloud(50, rng)
        proj = project(cloud, camera)
        assert np.array_equal(proj.opacities, cloud.opacities[proj.indices])

    def test_colors_finite_nonnegative(self, projected):
        assert np.all(np.isfinite(projected.colors))
        assert np.all(projected.colors >= 0.0)

    def test_offaxis_camera_consistency(self, rng, lookat_camera):
        cloud = make_cloud(80, rng, depth_range=(2.0, 10.0))
        proj = project(cloud, lookat_camera)
        # Projected means of visible Gaussians match direct projection.
        pts_cam = lookat_camera.world_to_camera(cloud.positions[proj.indices])
        uv = lookat_camera.project_points(pts_cam)
        assert np.allclose(proj.means2d, uv)

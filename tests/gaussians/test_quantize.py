"""Unit tests for FP16 parameter quantisation."""

import numpy as np

from repro.gaussians.quantize import to_half
from tests.conftest import make_cloud


class TestToHalf:
    def test_roundtrip_is_fp16_exact(self, rng):
        cloud = make_cloud(20, rng)
        half = to_half(cloud)
        # Every value must be exactly representable in fp16.
        for arr in (half.positions, half.scales, half.sh_coeffs):
            assert np.array_equal(arr, arr.astype(np.float16).astype(np.float64))

    def test_error_bounded_by_half_precision(self, rng):
        cloud = make_cloud(20, rng)
        half = to_half(cloud)
        # fp16 has ~2^-11 relative precision.
        rel = np.abs(half.positions - cloud.positions) / np.maximum(
            np.abs(cloud.positions), 1e-6
        )
        assert np.max(rel) < 2.0 ** -10

    def test_opacities_stay_in_range(self, rng):
        cloud = make_cloud(20, rng)
        half = to_half(cloud)
        assert np.all(half.opacities >= 0.0)
        assert np.all(half.opacities <= 1.0)

    def test_scales_stay_positive(self, rng):
        cloud = make_cloud(20, rng, scale_range=(1e-7, 1e-6))
        half = to_half(cloud)
        assert np.all(half.scales > 0.0)

    def test_idempotent(self, rng):
        cloud = make_cloud(20, rng)
        once = to_half(cloud)
        twice = to_half(once)
        assert np.array_equal(once.positions, twice.positions)
        assert np.array_equal(once.scales, twice.scales)

    def test_original_untouched(self, rng):
        cloud = make_cloud(20, rng)
        before = cloud.positions.copy()
        to_half(cloud)
        assert np.array_equal(cloud.positions, before)

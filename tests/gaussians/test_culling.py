"""Unit tests for frustum/opacity culling."""

import numpy as np

from repro.gaussians.cloud import GaussianCloud
from repro.gaussians.culling import MIN_OPACITY, cull
from tests.conftest import make_cloud


def _single(position, opacity=0.9):
    return GaussianCloud(
        positions=np.array([position], dtype=float),
        scales=np.full((1, 3), 0.1),
        rotations=np.array([[1.0, 0.0, 0.0, 0.0]]),
        opacities=np.array([opacity]),
        sh_coeffs=np.zeros((1, 4, 3)),
    )


class TestCull:
    def test_point_in_front_is_visible(self, camera):
        result = cull(_single([0.0, 0.0, 5.0]), camera)
        assert result.num_visible == 1

    def test_point_behind_camera_depth_culled(self, camera):
        result = cull(_single([0.0, 0.0, -5.0]), camera)
        assert result.num_visible == 0
        assert result.num_depth_culled == 1

    def test_point_beyond_far_plane_culled(self, camera):
        result = cull(_single([0.0, 0.0, camera.far + 1.0]), camera)
        assert result.num_depth_culled == 1

    def test_point_inside_near_plane_culled(self, camera):
        result = cull(_single([0.0, 0.0, camera.near / 2.0]), camera)
        assert result.num_depth_culled == 1

    def test_far_off_axis_point_frustum_culled(self, camera):
        # At depth 5 the guard-banded half-width is 1.3 * 5 * tanfov.
        x = 5.0 * camera.tan_half_fov_x * 2.0
        result = cull(_single([x, 0.0, 5.0]), camera)
        assert result.num_frustum_culled == 1

    def test_guard_band_keeps_slightly_off_screen(self, camera):
        # Just outside the image but inside the 1.3 margin.
        x = 5.0 * camera.tan_half_fov_x * 1.2
        result = cull(_single([x, 0.0, 5.0]), camera)
        assert result.num_visible == 1

    def test_transparent_gaussian_culled(self, camera):
        result = cull(_single([0.0, 0.0, 5.0], opacity=MIN_OPACITY / 2.0), camera)
        assert result.num_opacity_culled == 1

    def test_counters_partition_input(self, rng, camera):
        cloud = make_cloud(200, rng, depth_range=(-5.0, 30.0), spread=15.0,
                           opacity_range=(0.0, 1.0))
        result = cull(cloud, camera)
        total = (
            result.num_visible
            + result.num_depth_culled
            + result.num_frustum_culled
            + result.num_opacity_culled
        )
        assert total == result.num_input == len(cloud)

    def test_mask_matches_count(self, rng, camera):
        cloud = make_cloud(100, rng, depth_range=(-5.0, 20.0))
        result = cull(cloud, camera)
        assert int(np.count_nonzero(result.visible)) == result.num_visible

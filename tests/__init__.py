"""Test package."""

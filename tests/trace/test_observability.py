"""Integration tests for tracing through the serving stack.

The two contracts under test:

* **Observation only** — tracing never changes served bytes.  The same
  request against a traced and an untraced gateway yields identical
  images, stats and frame metadata, and no server-minted trace id ever
  appears in client-visible headers.
* **Export** — spans and counters actually surface: the named stages
  show up per trace, the METRICS wire message and the ``/metrics`` /
  ``/traces`` HTTP endpoints return them, and per-class admission
  counters (admitted / shed / retry_after_issued) ride along.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.gaussians.camera import Camera
from repro.serve import (
    AdmissionController,
    AsyncGatewayClient,
    GatewayClientPool,
    RenderGateway,
    RenderService,
)
from repro.serve.admission import AdmissionRejected
from repro.tiles.boundary import BoundaryMethod
from repro.trace import Tracer
from tests.conftest import make_cloud


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(91)
    cloud = make_cloud(35, rng)
    cameras = [
        Camera(width=64, height=48, fx=60.0 + i, fy=60.0 + i)
        for i in range(3)
    ]
    return cloud, cameras


@pytest.fixture(scope="module")
def renderer():
    return GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)


def run_gateway(renderer, body, *, tracer=None, node_id="gw0", **kwargs):
    """Start service + gateway (both sharing ``tracer``), run ``body``."""

    async def main():
        async with RenderService(
            renderer, max_batch_size=4, max_wait=0.002, tracer=tracer
        ) as service:
            gateway = RenderGateway(
                service, tracer=tracer, node_id=node_id, **kwargs
            )
            await gateway.start()
            try:
                return await body(service, gateway)
            finally:
                await gateway.close()

    return asyncio.run(main())


async def http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = data.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body


class TestServiceSpans:
    def test_render_emits_the_pipeline_stages(self, scene, renderer):
        from repro.serve import SharedRenderCache

        cloud, cameras = scene
        tracer = Tracer(node="svc")

        async def main():
            async with RenderService(
                renderer, cache=cache, max_batch_size=2, max_wait=0.001,
                tracer=tracer,
            ) as service:
                await service.render_frame(
                    cloud, cameras[0], request_class="interactive",
                    trace="cli-00000001",
                )

        with SharedRenderCache() as cache:
            asyncio.run(main())
        spans = tracer.spans(trace="cli-00000001")
        names = [span["name"] for span in spans]
        for stage in ("queue", "cache", "batch", "render"):
            assert stage in names, names
        cache_span = next(s for s in spans if s["name"] == "cache")
        assert cache_span["attrs"] == {"hit": False}
        render = next(s for s in spans if s["name"] == "render")
        assert render["attrs"]["class"] == "interactive"
        assert "scene" in render["attrs"]
        assert "camera" in render["attrs"]
        batch = next(s for s in spans if s["name"] == "batch")
        assert batch["attrs"]["batch"].startswith("svc-b")

    def test_tracing_off_renders_identically(self, scene, renderer):
        cloud, cameras = scene

        async def once(tracer):
            async with RenderService(
                renderer, max_batch_size=2, max_wait=0.001, tracer=tracer
            ) as service:
                result = await service.render_frame(cloud, cameras[0])
                return result.image.tobytes(), result.stats

        traced = asyncio.run(once(Tracer(node="svc")))
        untraced = asyncio.run(once(None))
        assert traced == untraced


class TestByteIdentity:
    def test_gateway_frames_identical_traced_vs_untraced(
        self, scene, renderer
    ):
        """The tentpole invariant: tracing on or off, a gateway serves
        the same bytes — image, stats, checksum and header metadata."""
        cloud, cameras = scene

        def serve(tracer):
            async def body(service, gateway):
                client = await AsyncGatewayClient.connect(
                    "127.0.0.1", gateway.tcp_port
                )
                try:
                    out = []
                    for camera in cameras:
                        result, meta = await client.render_frame(
                            cloud, camera, with_meta=True
                        )
                        out.append(
                            (result.image.tobytes(), result.stats, meta)
                        )
                    return out
                finally:
                    await client.close()

            return run_gateway(renderer, body, tracer=tracer)

        traced = serve(Tracer(node="gw0"))
        untraced = serve(None)
        assert traced == untraced
        engine = RenderEngine(renderer)
        for (image, stats, meta), camera in zip(traced, cameras):
            reference = engine.render(cloud, camera)
            assert image == reference.image.tobytes()
            assert stats == reference.stats
            # The backend id is stamped regardless of tracing; a
            # server-minted trace id never reaches the client.
            assert meta["backend"] == "gw0"
            assert "trace" not in meta

    def test_client_minted_trace_id_is_echoed_and_spans_recorded(
        self, scene, renderer
    ):
        cloud, cameras = scene
        tracer = Tracer(node="gw0")

        async def body(service, gateway):
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                return await client.render_frame(
                    cloud, cameras[0], trace="cli-deadbeef", with_meta=True
                )
            finally:
                await client.close()

        _, meta = run_gateway(renderer, body, tracer=tracer)
        assert meta["trace"] == "cli-deadbeef"
        names = {s["name"] for s in tracer.spans(trace="cli-deadbeef")}
        assert {"admission", "queue", "render", "wire"} <= names

    def test_stream_meta_rides_every_frame(self, scene, renderer):
        cloud, cameras = scene
        tracer = Tracer(node="gw0")

        async def body(service, gateway):
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                out = []
                async for index, result, meta in client.stream_trajectory(
                    cloud, cameras, trace="cli-s1", with_meta=True
                ):
                    out.append((index, meta))
                return out
            finally:
                await client.close()

        out = run_gateway(renderer, body, tracer=tracer)
        assert [index for index, _ in out] == list(range(len(cameras)))
        for _, meta in out:
            assert meta["backend"] == "gw0"
            assert meta["trace"] == "cli-s1"


class TestExport:
    def test_metrics_wire_message_and_http_endpoints(self, scene, renderer):
        cloud, cameras = scene
        tracer = Tracer(node="gw0")

        async def body(service, gateway):
            await gateway.start_http()
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                await client.render_frame(
                    cloud, cameras[0], request_class="interactive",
                    trace="cli-m1",
                )
                out = {"wire": await client.metrics_dict()}
            finally:
                await client.close()
            port = gateway.http_port
            out["http"] = await http_get(port, "/metrics")
            out["traces"] = await http_get(port, "/traces?trace=cli-m1")
            out["bad_limit"] = await http_get(port, "/traces?limit=nope")
            out["limited"] = await http_get(port, "/traces?limit=1")
            return out

        out = run_gateway(renderer, body, tracer=tracer)

        wire = out["wire"]
        assert wire["node"] == "gw0"
        assert wire["queue_depth"] == 0
        assert wire["pending"] == 0
        classes = wire["admission"]["classes"]
        assert classes["interactive"]["admitted"] == 1
        assert classes["interactive"]["retry_after_issued"] == 0
        assert "stage_ms.render" in wire["histograms"]
        assert wire["histograms"]["stage_ms.render"]["count"] >= 1

        status, body_bytes = out["http"]
        assert status == 200
        assert json.loads(body_bytes) == wire

        status, body_bytes = out["traces"]
        assert status == 200
        traces = json.loads(body_bytes)
        assert traces["node"] == "gw0"
        names = [s["name"] for s in traces["traces"]["cli-m1"]]
        assert "render" in names and "wire" in names

        assert out["bad_limit"][0] == 400
        status, body_bytes = out["limited"]
        assert status == 200
        limited = json.loads(body_bytes)
        assert sum(len(v) for v in limited["traces"].values()) == 1

    def test_metrics_without_tracer_still_serves_gauges(
        self, scene, renderer
    ):
        cloud, cameras = scene

        async def body(service, gateway):
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", gateway.tcp_port
            )
            try:
                await client.render_frame(cloud, cameras[0])
                return await client.metrics_dict()
            finally:
                await client.close()

        wire = run_gateway(renderer, body, tracer=None)
        assert wire["queue_depth"] == 0
        assert wire["admission"]["classes"]["bulk"]["admitted"] == 1
        assert wire["histograms"] == {}  # no tracer, no stage latencies


class TestAdmissionCounters:
    def test_retry_after_issued_counts_hinted_rejects(self):
        controller = AdmissionController(1)
        ticket = controller.admit("interactive")
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit("bulk")
        assert excinfo.value.retry_after_ms > 0
        assert controller.retry_after_issued["bulk"] == 1
        assert controller.retry_after_issued["interactive"] == 0
        ticket.release()
        stats = controller.stats_dict()
        assert stats["classes"]["bulk"]["retry_after_issued"] == 1
        assert stats["classes"]["bulk"]["rejected"] == 1
        assert stats["classes"]["interactive"]["admitted"] == 1

    def test_shed_rejects_also_issue_hints(self):
        controller = AdmissionController(8)
        controller.shed_level = 1  # sheds prefetch (priority 0)
        with pytest.raises(AdmissionRejected):
            controller.admit("prefetch")
        assert controller.retry_after_issued["prefetch"] == 1
        assert controller.shed["prefetch"] == 1


class TestPoolMeta:
    def test_pool_surfaces_the_serving_backend(self, scene, renderer):
        cloud, cameras = scene

        async def body(service, gateway):
            pool = GatewayClientPool("127.0.0.1", gateway.tcp_port, size=2)
            try:
                result, meta = await pool.render_frame(
                    cloud, cameras[0], with_meta=True
                )
                streamed = []
                async for index, _result, frame_meta in pool.stream_trajectory(
                    cloud, cameras, with_meta=True
                ):
                    streamed.append((index, frame_meta["backend"]))
                return (result.image.tobytes(), meta), streamed
            finally:
                await pool.close()

        (image, meta), streamed = run_gateway(
            renderer, body, node_id="backend-7"
        )
        reference = RenderEngine(renderer).render(cloud, cameras[0])
        assert image == reference.image.tobytes()
        assert meta["backend"] == "backend-7"
        assert [index for index, _ in streamed] == list(range(len(cameras)))
        assert all(backend == "backend-7" for _, backend in streamed)

"""Tests for the ``repro trace`` CLI: parser shape, replay and top.

The subprocess-heavy ``record`` path is exercised end-to-end by the
failover stitching test and the CI ``trace-smoke`` job; here its
validation (which runs *before* any process spawns) and the offline
``replay`` / ``top`` commands run against a hand-built capture.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.shm_cache import cloud_fingerprint
from repro.scenes.synthetic import load_scene
from repro.serve.protocol import encode_camera


class TestParser:
    def test_trace_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_record_defaults(self):
        args = build_parser().parse_args(
            ["trace", "record", "--dir", "/tmp/cap"]
        )
        assert args.func.__name__ == "_cmd_trace_record"
        assert args.backends == 2
        assert args.replicate == 2
        assert args.clients == 2
        assert args.request_class is None
        assert not args.kill_one
        assert not args.append

    def test_record_requires_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "record"])

    def test_replay_defaults_and_choices(self):
        args = build_parser().parse_args(
            ["trace", "replay", "--dir", "/tmp/cap", "--config", "gscore",
             "--num-cores", "8", "--frequency-ghz", "2.0"]
        )
        assert args.func.__name__ == "_cmd_trace_replay"
        assert args.config == "gscore"
        assert args.num_cores == 8
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "replay", "--dir", "d", "--config", "tpu"]
            )

    def test_top_defaults(self):
        args = build_parser().parse_args(["trace", "top", "--dir", "/tmp/c"])
        assert args.func.__name__ == "_cmd_trace_top"
        assert args.limit == 5


class TestRecordValidation:
    """Record's sanity checks fire before any backend spawns."""

    def test_kill_one_needs_two_backends_and_replicas(self, tmp_path):
        with pytest.raises(SystemExit, match="kill-one"):
            main(
                ["trace", "record", "--dir", str(tmp_path), "--kill-one",
                 "--backends", "1"]
            )
        with pytest.raises(SystemExit, match="kill-one"):
            main(
                ["trace", "record", "--dir", str(tmp_path), "--kill-one",
                 "--replicate", "1"]
            )

    def test_refuses_an_existing_capture_without_append(self, tmp_path):
        (tmp_path / "old.jsonl").write_text("")
        with pytest.raises(SystemExit, match="--append"):
            main(["trace", "record", "--dir", str(tmp_path)])

    def test_positive_counts(self, tmp_path):
        for flag in ("--backends", "--clients", "--passes"):
            with pytest.raises(SystemExit):
                main(["trace", "record", "--dir", str(tmp_path), flag, "0"])


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    """A small hand-built capture for one scene at CLI-default knobs."""
    directory = tmp_path_factory.mktemp("capture")
    scene = load_scene("train", resolution_scale=0.05, seed=0)
    fingerprint = cloud_fingerprint(scene.cloud)
    camera = scene.camera
    spans = [
        {"trace": "cli-1", "name": "route", "node": "router",
         "t_ms": 0.0, "dur_ms": 30.0,
         "attrs": {"class": "interactive", "backends": ["backend-0"],
                   "failovers": 0}},
        {"trace": "cli-1", "name": "render", "node": "backend-0",
         "t_ms": 5.0, "dur_ms": 20.0,
         "attrs": {"scene": fingerprint, "camera": encode_camera(camera),
                   "class": "interactive"}},
        {"trace": "cli-1", "name": "wire", "node": "backend-0",
         "t_ms": 26.0, "dur_ms": 1.0, "attrs": {"bytes": 1000}},
    ]
    with open(directory / "backend-0.jsonl", "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span) + "\n")
    return directory


class TestReplayCommand:
    def test_replay_reports_per_class_costs(self, capture, capsys):
        code = main(
            ["trace", "replay", "--dir", str(capture), "--scene", "train",
             "--scale", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed 1 rendered frames" in out
        assert "interactive" in out
        assert "GS-TG" in out

    def test_replay_is_deterministic_between_invocations(
        self, capture, capsys
    ):
        main(["trace", "replay", "--dir", str(capture), "--scene", "train",
              "--scale", "0.05"])
        first = capsys.readouterr().out
        main(["trace", "replay", "--dir", str(capture), "--scene", "train",
              "--scale", "0.05"])
        assert capsys.readouterr().out == first

    def test_replay_rejects_an_empty_capture(self, tmp_path):
        with pytest.raises(SystemExit, match="no spans"):
            main(["trace", "replay", "--dir", str(tmp_path)])


class TestTopCommand:
    def test_top_aggregates_stages_and_slowest_traces(self, capture, capsys):
        code = main(["trace", "top", "--dir", str(capture), "--limit", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "render" in out and "route" in out and "wire" in out
        assert "slowest 1 of 1 traces" in out
        assert "cli-1" in out
        assert "backend-0+router" in out  # node list, sorted

    def test_top_rejects_an_empty_capture(self, tmp_path):
        with pytest.raises(SystemExit, match="no spans"):
            main(["trace", "top", "--dir", str(tmp_path)])


class TestPlumbing:
    def test_supervisor_forwards_trace_dir(self, tmp_path):
        from repro.cluster import LocalFleet

        fleet = LocalFleet(1, trace_dir=tmp_path)
        argv = fleet._backend_argv("backend-0")
        assert "--trace-dir" in argv
        assert argv[argv.index("--trace-dir") + 1] == str(tmp_path)
        assert "--trace-dir" not in LocalFleet(1)._backend_argv("backend-0")

    def test_backend_parser_accepts_trace_dir(self):
        from repro.cluster.backend import build_parser as backend_parser

        args = backend_parser().parse_args(["--trace-dir", "/tmp/cap"])
        assert args.trace_dir == "/tmp/cap"
        assert backend_parser().parse_args([]).trace_dir is None

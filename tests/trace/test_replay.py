"""Tests for trace-driven hardware co-simulation.

The load-bearing property is determinism: the same capture replayed
against the same configuration yields *identical* cycle counts, which
is what makes replay results comparable across hardware configurations.
Everything feeding it — JSONL loading order, camera round-tripping,
trace→class attribution — is pinned here too.
"""

import json

import numpy as np
import pytest

from repro.experiments.shm_cache import cloud_fingerprint
from repro.gaussians.camera import Camera
from repro.hardware.config import GSCORE_CONFIG, GSTG_CONFIG
from repro.serve.protocol import encode_camera
from repro.trace import build_config, load_spans, replay, stitch
from tests.conftest import make_cloud


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(77)
    cloud = make_cloud(30, rng)
    cameras = [
        Camera(width=64, height=48, fx=60.0 + i, fy=60.0 + i)
        for i in range(3)
    ]
    return cloud, cameras


def render_span(fingerprint, camera, *, trace, request_class=None):
    attrs = {"scene": fingerprint, "camera": encode_camera(camera)}
    if request_class is not None:
        attrs["class"] = request_class
    return {
        "trace": trace, "name": "render", "node": "b0",
        "t_ms": 1.0, "dur_ms": 5.0, "attrs": attrs,
    }


class TestLoading:
    def test_load_spans_file_and_directory(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text(
            json.dumps({"trace": "t-1", "name": "queue", "node": "a",
                        "t_ms": 0, "dur_ms": 1}) + "\n\n"
        )
        b.write_text(
            json.dumps({"trace": "t-1", "name": "render", "node": "b",
                        "t_ms": 0, "dur_ms": 2}) + "\n"
            + json.dumps({"not-a-span": True}) + "\n"
        )
        assert len(load_spans(a)) == 1
        spans = load_spans(tmp_path)
        # Sorted file order, blank lines and non-span records skipped.
        assert [s["node"] for s in spans] == ["a", "b"]

    def test_load_spans_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trace": "t"}\n{broken\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_spans(path)

    def test_stitch_groups_by_trace_id(self):
        spans = [
            {"trace": "t-1", "name": "route", "node": "router"},
            {"trace": "t-2", "name": "queue", "node": "b0"},
            {"trace": "t-1", "name": "render", "node": "b0"},
        ]
        traces = stitch(spans)
        assert [s["name"] for s in traces["t-1"]] == ["route", "render"]
        assert len(traces["t-2"]) == 1


class TestBuildConfig:
    def test_base_configs(self):
        assert build_config("gstg") is GSTG_CONFIG
        assert build_config("gscore") is GSCORE_CONFIG

    def test_overrides(self):
        config = build_config("gstg", num_cores=8, frequency_ghz=2.0)
        assert config.num_cores == 8
        assert config.frequency_hz == pytest.approx(2e9)
        assert "8core" in config.name

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown config"):
            build_config("tpu")
        with pytest.raises(ValueError):
            build_config("gstg", num_cores=0)
        with pytest.raises(ValueError):
            build_config("gstg", frequency_ghz=-1.0)


class TestReplay:
    def test_replay_is_deterministic(self, workload):
        """The acceptance property: same trace, same config, identical
        cycles — run to run."""
        cloud, cameras = workload
        fingerprint = cloud_fingerprint(cloud)
        spans = [
            render_span(fingerprint, camera, trace=f"t-{i}",
                        request_class="interactive" if i == 0 else "bulk")
            for i, camera in enumerate(cameras)
        ]
        clouds = {fingerprint: cloud}
        first = replay(spans, clouds)
        second = replay(spans, clouds)
        assert first.requests == second.requests == 3
        for a, b in zip(first.classes, second.classes):
            assert a.request_class == b.request_class
            assert a.cycles == b.cycles  # exact, not approx
            assert a.energy_j == b.energy_j
        assert first.total_cycles > 0
        assert first.total_energy_j > 0

    def test_per_class_attribution_and_duplicate_views(self, workload):
        cloud, cameras = workload
        fingerprint = cloud_fingerprint(cloud)
        # Two requests for the SAME view under different classes: one
        # distinct render, two attributed requests.
        spans = [
            render_span(fingerprint, cameras[0], trace="t-1",
                        request_class="interactive"),
            render_span(fingerprint, cameras[0], trace="t-2",
                        request_class="bulk"),
        ]
        report = replay(spans, {fingerprint: cloud})
        assert report.distinct_renders == 1
        by_class = report.by_class()
        assert by_class["interactive"].requests == 1
        assert by_class["bulk"].requests == 1
        # Same view ⇒ same per-request cost, class labels aside.
        assert by_class["interactive"].cycles == by_class["bulk"].cycles

    def test_streamed_frames_inherit_class_from_the_stream_event(
        self, workload
    ):
        """A stream's render spans are class-less (per-class counters
        count streams once); the class rides the stream-open event
        sharing the trace id."""
        cloud, cameras = workload
        fingerprint = cloud_fingerprint(cloud)
        spans = [
            {"trace": "t-s", "name": "stream", "node": "gw", "t_ms": 0,
             "dur_ms": 0, "attrs": {"class": "prefetch", "frames": 2}},
            render_span(fingerprint, cameras[0], trace="t-s"),
            render_span(fingerprint, cameras[1], trace="t-s"),
        ]
        report = replay(spans, {fingerprint: cloud})
        assert report.by_class()["prefetch"].requests == 2

    def test_unknown_scene_and_non_render_spans_are_skipped(self, workload):
        cloud, cameras = workload
        fingerprint = cloud_fingerprint(cloud)
        spans = [
            {"trace": "t-1", "name": "queue", "node": "b0", "t_ms": 0,
             "dur_ms": 1},
            render_span("not-a-known-fingerprint", cameras[0], trace="t-2"),
            {"trace": "t-3", "name": "render", "node": "b0", "t_ms": 0,
             "dur_ms": 1, "attrs": {}},  # no camera/scene
            render_span(fingerprint, cameras[0], trace="t-4"),
        ]
        report = replay(spans, {fingerprint: cloud})
        assert report.requests == 1
        assert report.skipped == 2

    def test_configs_differ_in_simulated_cost(self, workload):
        """Replaying fixed traffic against different hardware is the
        point of the exercise — the reports must actually differ."""
        cloud, cameras = workload
        fingerprint = cloud_fingerprint(cloud)
        spans = [render_span(fingerprint, cameras[0], trace="t-1")]
        clouds = {fingerprint: cloud}
        base = replay(spans, clouds, config=build_config("gstg"))
        # A slower clock stretches DRAM latency differently through the
        # pipelined recurrence and scales the compute energy.
        slow = replay(
            spans, clouds, config=build_config("gstg", frequency_ghz=0.5)
        )
        assert slow.total_cycles != base.total_cycles
        assert slow.total_energy_j > base.total_energy_j
        # Different module/power rosters cost different energy over the
        # same traffic.
        other = replay(spans, clouds, config=build_config("gscore"))
        assert other.total_energy_j != base.total_energy_j

"""Trace-id propagation across failover: one request, one trace.

The acceptance property for the tracing layer: a client-minted trace
id rides the wire through the router to a backend, survives a
mid-stream backend death, and reappears in the replacement backend's
spans — so the capture stitches into ONE trace whose spans come from
the router, the dead backend and the survivor, covering at least five
named stages.

Two environments prove it: real subprocesses under SIGKILL (the spans
a dead process already served must be on disk — the line-buffered
JSONL sink), and the in-process chaos proxy corrupting a FRAME blob
(checksum-triggered failover, no process death at all).
"""

import asyncio

import numpy as np

from repro.chaos import ChaosProxy, ChaosSchedule, Fault, FaultKind
from repro.cluster import (
    BackendSpec,
    ClusterMap,
    HealthMonitor,
    LocalFleet,
    ShardRouter,
)
from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.experiments.shm_cache import cloud_fingerprint
from repro.gaussians.camera import Camera
from repro.serve import AsyncGatewayClient, RenderGateway, RenderService
from repro.tiles.boundary import BoundaryMethod
from repro.trace import STAGES, Tracer, load_spans, stitch
from tests.conftest import make_cloud


def test_sigkill_failover_stitches_one_trace_across_nodes(tmp_path):
    """2 subprocess backends capturing to ``--trace-dir``, the owner
    SIGKILLed mid-stream: the client's trace id must stitch spans from
    the router, the victim AND the survivor into one trace with at
    least five named stages — and the stream itself stays ordered and
    bit-identical."""
    rng = np.random.default_rng(67)
    cloud = make_cloud(25, rng)
    base = [
        Camera(width=72, height=56, fx=66.0 + i, fy=66.0 + i)
        for i in range(8)
    ]
    # Long enough that the SIGKILL lands mid-send (see test_fleet.py).
    cameras = base * 48
    renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
    engine = RenderEngine(renderer)
    reference = [engine.render(cloud, camera) for camera in base]
    trace_id = "cli-failover-1"

    fleet = LocalFleet(2, auth_token="fleet-secret", trace_dir=tmp_path)
    specs = fleet.start()

    async def main():
        cluster_map = ClusterMap(specs, replication=2)
        router_tracer = Tracer(
            node="router", sink=tmp_path / "router.jsonl"
        )
        router = ShardRouter(
            cluster_map, auth_token="fleet-secret", tracer=router_tracer
        )
        await router.start()
        victim = cluster_map.owner(cloud_fingerprint(cloud)).backend_id
        try:
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", router.tcp_port, auth_token="fleet-secret"
            )
            try:
                results = []
                async for index, result in client.stream_trajectory(
                    cloud, cameras, trace=trace_id
                ):
                    results.append((index, result))
                    if index == 2:
                        await asyncio.get_running_loop().run_in_executor(
                            None, fleet.kill, victim
                        )
                return results, router.stats.failovers, victim
            finally:
                await client.close()
        finally:
            await router.close()
            router_tracer.close()

    try:
        results, failovers, victim = asyncio.run(main())
    finally:
        fleet.close()

    assert failovers >= 1
    indices = [index for index, _ in results]
    assert indices == list(range(len(cameras)))
    for index, result in results:
        assert np.array_equal(result.image, reference[index % len(base)].image)

    # The capture holds one file per node; the client's id stitches
    # them into one trace spanning all three.
    spans = stitch(load_spans(tmp_path))[trace_id]
    nodes = {span["node"] for span in spans}
    assert nodes == {"router", "backend-0", "backend-1"}
    stages = {span["name"] for span in spans}
    assert len(stages & set(STAGES)) >= 5, stages
    assert {"route", "render", "wire"} <= stages
    # Both backends rendered under the SAME client id — the victim's
    # spans survived its SIGKILL because the sink is line-buffered.
    for backend in ("backend-0", "backend-1"):
        assert any(
            s["node"] == backend and s["name"] == "render" for s in spans
        ), backend
    # The router's route span names the failover it performed.
    route = next(s for s in spans if s["name"] == "route")
    assert route["attrs"]["failovers"] >= 1
    assert len(route["attrs"]["backends"]) >= 2


# Offset inside the first FRAME's pixel blob (see tests/chaos).
_IN_FIRST_BLOB = 5_000


def test_chaos_corruption_failover_keeps_the_trace_stitched():
    """No process dies here: the chaos proxy corrupts one FRAME byte on
    the owner's first link, the checksum turns it into a failover, and
    the replacement backend's spans still carry the client's id."""
    rng = np.random.default_rng(68)
    cloud = make_cloud(30, rng)
    cameras = [
        Camera(width=88, height=64, fx=75.0 + i, fy=75.0 + i)
        for i in range(4)
    ]
    renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
    trace_id = "cli-chaos-1"

    async def main():
        services, gateways, proxies, specs, tracers = [], [], [], [], []
        for index in range(2):
            tracer = Tracer(node=f"b{index}")
            service = RenderService(
                renderer, max_batch_size=4, max_wait=0.002, tracer=tracer
            )
            gateway = RenderGateway(
                service, tracer=tracer, node_id=f"b{index}"
            )
            await gateway.start()
            proxy = ChaosProxy("127.0.0.1", gateway.tcp_port)
            await proxy.start()
            services.append(service)
            gateways.append(gateway)
            proxies.append(proxy)
            tracers.append(tracer)
            specs.append(BackendSpec(f"b{index}", "127.0.0.1", proxy.port))
        cluster_map = ClusterMap(specs, replication=2)
        monitor = HealthMonitor(cluster_map)  # never started: no probes
        router_tracer = Tracer(node="router")
        router = ShardRouter(
            cluster_map, monitor=monitor, tracer=router_tracer
        )
        await router.start()
        ranked = cluster_map.replicas(cloud_fingerprint(cloud))
        by_id = dict(zip((s.backend_id for s in specs), proxies))
        by_id[ranked[0].backend_id].schedule = ChaosSchedule(
            per_connection={
                0: [Fault(FaultKind.CORRUPT, after_bytes=_IN_FIRST_BLOB)]
            }
        )
        try:
            client = await AsyncGatewayClient.connect(
                "127.0.0.1", router.tcp_port
            )
            try:
                indices = []
                async for index, _result in client.stream_trajectory(
                    cloud, cameras, trace=trace_id
                ):
                    indices.append(index)
            finally:
                await client.close()
            await router.start_http()
            http = await _http_get(
                router.http_port, f"/traces?trace={trace_id}"
            )
            metrics = await _http_get(router.http_port, "/metrics")
            return (
                indices,
                router.stats.failovers,
                [t.spans(trace=trace_id) for t in tracers],
                router_tracer.spans(trace=trace_id),
                http,
                metrics,
            )
        finally:
            await router.close()
            for proxy in proxies:
                await proxy.close()
            for gateway in gateways:
                await gateway.close()
            for service in services:
                await service.close()

    indices, failovers, backend_spans, router_spans, http, metrics = (
        asyncio.run(main())
    )
    assert indices == list(range(len(cameras)))
    assert failovers >= 1
    # Both backends emitted spans under the client's id: the owner
    # before the corruption, the replica after the failover.
    assert all(spans for spans in backend_spans), backend_spans
    assert any(
        span["name"] == "render"
        for spans in backend_spans
        for span in spans
    )
    assert {s["name"] for s in router_spans} >= {"admission", "route"}

    import json

    status, body = http
    assert status == 200
    served = json.loads(body)
    assert served["node"] == "router"
    names = {s["name"] for s in served["traces"][trace_id]}
    assert "route" in names
    status, body = metrics
    assert status == 200
    doc = json.loads(body)
    assert doc["role"] == "router"
    assert "stage_ms.route" in doc["histograms"]
    assert "health" in doc  # the per-backend health view rides along


async def _http_get(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = data.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), body

"""Tests for the tracing core: spans, ids, the ring, sinks, metrics.

The properties the serving stack depends on: deterministic ids (the
Nth trace on a node always gets the same id), a bounded collector that
never grows past capacity, a JSONL sink durable line-by-line (a
SIGKILLed process loses nothing already recorded), and a disabled
tracer that records nothing and allocates nothing observable.
"""

import json
import threading

import pytest

from repro.trace import (
    MAX_TRACE_ID_LEN,
    NULL_TRACER,
    STAGES,
    Histogram,
    MetricsRegistry,
    Tracer,
    valid_trace_id,
)


class TestIds:
    def test_trace_ids_are_deterministic_and_node_prefixed(self):
        tracer = Tracer(node="gw0")
        assert tracer.new_trace_id() == "gw0-00000001"
        assert tracer.new_trace_id() == "gw0-00000002"
        # A fresh tracer restarts the sequence: ids are a pure function
        # of (node, start order), never a clock or RNG.
        assert Tracer(node="gw0").new_trace_id() == "gw0-00000001"

    def test_batch_ids_share_the_counter_with_a_b_prefix(self):
        tracer = Tracer(node="n")
        assert tracer.new_trace_id() == "n-00000001"
        assert tracer.new_batch_id() == "n-b000002"

    def test_valid_trace_id(self):
        assert valid_trace_id("cli-00000001")
        assert valid_trace_id("x")
        assert not valid_trace_id("")
        assert not valid_trace_id(None)
        assert not valid_trace_id(123)
        assert not valid_trace_id("a" * (MAX_TRACE_ID_LEN + 1))
        assert not valid_trace_id("evil\nid")

    def test_stage_vocabulary_is_exported(self):
        assert set(STAGES) == {
            "wire", "route", "admission", "queue", "cache", "batch", "render"
        }


class TestSpans:
    def test_span_context_manager_records_on_exit(self):
        tracer = Tracer(node="n")
        with tracer.span("render", attrs={"scene": "abc"}) as span:
            span.set("class", "bulk")
        (record,) = tracer.spans()
        assert record["name"] == "render"
        assert record["node"] == "n"
        assert record["trace"] == "n-00000001"
        assert record["attrs"] == {"scene": "abc", "class": "bulk"}
        assert record["dur_ms"] >= 0.0

    def test_finish_is_idempotent(self):
        tracer = Tracer(node="n")
        span = tracer.span("queue")
        span.finish()
        span.finish()
        assert len(tracer.spans()) == 1

    def test_event_is_a_zero_duration_span(self):
        tracer = Tracer(node="n")
        tracer.event("stream", trace="t-1", attrs={"class": "bulk"})
        (record,) = tracer.spans()
        assert record["dur_ms"] == 0.0
        assert record["trace"] == "t-1"

    def test_record_with_explicit_timestamps(self):
        tracer = Tracer(node="n")
        start = tracer.now()
        tracer.record("batch", trace="t-9", start=start, end=start + 0.010)
        (record,) = tracer.spans()
        assert record["dur_ms"] == pytest.approx(10.0, abs=0.01)

    def test_ring_keeps_only_the_most_recent_capacity_spans(self):
        tracer = Tracer(node="n", capacity=3)
        for index in range(7):
            tracer.event("queue", trace=f"t-{index}")
        spans = tracer.spans()
        assert [s["trace"] for s in spans] == ["t-4", "t-5", "t-6"]

    def test_spans_filter_and_limit(self):
        tracer = Tracer(node="n")
        for index in range(4):
            tracer.event("queue", trace=f"t-{index % 2}")
        assert len(tracer.spans(trace="t-0")) == 2
        assert len(tracer.spans(limit=3)) == 3
        grouped = tracer.traces()
        assert set(grouped) == {"t-0", "t-1"}
        assert all(len(v) == 2 for v in grouped.values())

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(node="n", capacity=0)

    def test_thread_safety_under_concurrent_recording(self):
        tracer = Tracer(node="n", capacity=10_000)

        def worker():
            for _ in range(200):
                tracer.event("queue", trace=tracer.new_trace_id())

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = tracer.spans()
        assert len(spans) == 800
        # Every id was handed out exactly once despite the contention.
        assert len({s["trace"] for s in spans}) == 800


class TestSink:
    def test_sink_is_line_durable_without_close(self, tmp_path):
        """Each span hits disk as it is recorded — a SIGKILL later must
        not lose spans already served (the failover stitching tests
        read a dead backend's capture)."""
        path = tmp_path / "node.jsonl"
        tracer = Tracer(node="n", sink=path)
        tracer.event("render", trace="t-1", attrs={"scene": "s"})
        tracer.event("wire", trace="t-1")
        # No flush, no close: the lines must already be on disk.
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "render"
        tracer.close()
        # The tracer stays usable after close (the sink re-opens).
        tracer.event("queue", trace="t-2")
        assert len(path.read_text().splitlines()) == 3
        tracer.close()

    def test_sink_is_lazy(self, tmp_path):
        path = tmp_path / "never.jsonl"
        tracer = Tracer(node="n", sink=path)
        tracer.flush()
        tracer.close()
        assert not path.exists()


class TestDisabled:
    def test_null_tracer_records_nothing(self):
        NULL_TRACER.event("render", trace="t")
        with NULL_TRACER.span("queue") as span:
            span.set("k", "v")
        NULL_TRACER.record("batch", trace="t", start=0.0, end=1.0)
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.traces() == {}
        assert NULL_TRACER.metrics.snapshot()["histograms"] == {}

    def test_disabled_ids_are_none(self):
        assert NULL_TRACER.new_trace_id() is None
        assert NULL_TRACER.new_batch_id() is None

    def test_disabled_span_is_the_shared_singleton(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestMetrics:
    def test_spans_feed_stage_histograms(self):
        tracer = Tracer(node="n")
        start = tracer.now()
        for _ in range(3):
            tracer.record("render", trace="t", start=start, end=start + 0.005)
        snapshot = tracer.metrics.snapshot()
        hist = snapshot["histograms"]["stage_ms.render"]
        assert hist["count"] == 3
        assert hist["mean"] == pytest.approx(5.0, abs=0.01)

    def test_registry_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("requests")
        registry.inc("requests", 2)
        registry.gauge("depth", 7)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests"] == 3
        assert snapshot["gauges"]["depth"] == 7

    def test_histogram_percentiles(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(float(value))
        snapshot = hist.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["max"] == 100.0
        assert snapshot["p50"] == pytest.approx(50.5, abs=1.0)
        assert snapshot["p95"] == pytest.approx(95.0, abs=1.5)

    def test_histogram_window_bounds_memory(self):
        hist = Histogram(window=8)
        for value in range(100):
            hist.observe(float(value))
        snapshot = hist.snapshot()
        # Count is cumulative; the percentile window is bounded.
        assert snapshot["count"] == 100
        assert snapshot["p50"] >= 91.0

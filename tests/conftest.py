"""Shared fixtures: small deterministic clouds, cameras and projections.

Unit tests use hand-sized synthetic inputs (tens of Gaussians, ~64x48
images) so the whole suite stays fast; integration tests build slightly
larger scenes through the public scene loader.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians.camera import Camera, look_at
from repro.gaussians.cloud import GaussianCloud
from repro.gaussians.projection import project
from repro.gaussians.rotation import random_unit_quaternions


def make_cloud(
    n: int,
    rng: np.random.Generator,
    *,
    depth_range: "tuple[float, float]" = (3.0, 12.0),
    spread: float = 3.0,
    scale_range: "tuple[float, float]" = (0.05, 0.4),
    opacity_range: "tuple[float, float]" = (0.2, 0.95),
    sh_degree: int = 1,
) -> GaussianCloud:
    """A random cloud in front of the default camera (which looks down +z)."""
    positions = np.stack(
        [
            rng.uniform(-spread, spread, n),
            rng.uniform(-spread, spread, n),
            rng.uniform(*depth_range, n),
        ],
        axis=1,
    )
    k = (sh_degree + 1) ** 2
    return GaussianCloud(
        positions=positions,
        scales=rng.uniform(*scale_range, size=(n, 3)),
        rotations=random_unit_quaternions(n, rng),
        opacities=rng.uniform(*opacity_range, n),
        sh_coeffs=rng.normal(0.0, 0.4, size=(n, k, 3)),
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for every test."""
    return np.random.default_rng(1234)


@pytest.fixture
def camera() -> Camera:
    """A small identity-pose camera: 64x48, looking down +z."""
    return Camera(width=64, height=48, fx=60.0, fy=60.0, near=0.1, far=100.0)


@pytest.fixture
def small_cloud(rng: np.random.Generator) -> GaussianCloud:
    """~60 random Gaussians in front of ``camera``."""
    return make_cloud(60, rng)


@pytest.fixture
def projected(small_cloud, camera):
    """Projection of ``small_cloud`` through ``camera``."""
    return project(small_cloud, camera)


@pytest.fixture
def lookat_camera() -> Camera:
    """An off-axis camera built with the look_at helper."""
    return look_at(
        eye=[4.0, 3.0, -6.0],
        target=[0.0, 0.0, 6.0],
        width=80,
        height=60,
        fov_y_degrees=50.0,
    )

"""Property-based tests on the rendering pipelines.

The expensive end-to-end losslessness property runs on small random
clouds with a reduced example budget; the cheaper algebraic properties
get the full budget.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmask import popcount
from repro.core.pipeline import GSTGRenderer
from repro.gaussians.camera import Camera
from repro.gaussians.cloud import GaussianCloud
from repro.raster.alpha import MAX_ALPHA, compute_alpha
from repro.raster.renderer import BaselineRenderer
from repro.raster.sorting import depth_sort
from repro.tiles.boundary import BoundaryMethod

CAMERA = Camera(width=72, height=56, fx=70.0, fy=70.0)


@st.composite
def clouds(draw, max_n=24):
    n = draw(st.integers(1, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return GaussianCloud(
        positions=np.stack(
            [
                rng.uniform(-4, 4, n),
                rng.uniform(-4, 4, n),
                rng.uniform(1.0, 15.0, n),
            ],
            axis=1,
        ),
        scales=rng.uniform(0.02, 0.8, (n, 3)),
        rotations=rng.normal(size=(n, 4)) + np.array([2.0, 0, 0, 0]),
        opacities=rng.uniform(0.01, 0.99, n),
        sh_coeffs=rng.normal(0, 0.5, (n, 4, 3)),
    )


class TestLosslessnessProperty:
    @given(clouds(), st.sampled_from(list(BoundaryMethod)))
    @settings(max_examples=20, deadline=None)
    def test_gstg_bit_identical_to_baseline(self, cloud, method):
        """For any cloud and any boundary method, GS-TG at 16+64 equals
        the 16x16 baseline bit for bit."""
        base = BaselineRenderer(16, method).render(cloud, CAMERA)
        ours = GSTGRenderer(16, 64, method, method).render(cloud, CAMERA)
        assert np.array_equal(base.image, ours.image)

    @given(clouds())
    @settings(max_examples=15, deadline=None)
    def test_group_sorting_never_more_keys(self, cloud):
        """Group-level sorting can never sort more keys than tile-level
        sorting (each group pair collapses >= 1 tile pairs)."""
        base = BaselineRenderer(16, BoundaryMethod.ELLIPSE).render(cloud, CAMERA)
        ours = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE).render(cloud, CAMERA)
        assert ours.stats.sort.num_keys <= base.stats.sort.num_keys

    @given(clouds())
    @settings(max_examples=15, deadline=None)
    def test_bitmask_popcount_equals_tile_pairs(self, cloud):
        """The total set bits across all bitmasks equals the number of
        baseline (Gaussian, tile) pairs: the bitmasks ARE the tile
        assignment, re-encoded."""
        from repro.core.bitmask import generate_bitmasks
        from repro.core.grouping import GroupGeometry
        from repro.gaussians.projection import project
        from repro.tiles.identify import identify_tiles

        proj = project(cloud, CAMERA)
        geometry = GroupGeometry(CAMERA.width, CAMERA.height, 16, 64)
        group_assignment = identify_tiles(
            proj, geometry.group_grid, BoundaryMethod.ELLIPSE
        )
        table = generate_bitmasks(
            proj, geometry, group_assignment, BoundaryMethod.ELLIPSE
        )
        tile_assignment = identify_tiles(
            proj, geometry.tile_grid, BoundaryMethod.ELLIPSE
        )
        assert int(popcount(table.masks).sum()) == tile_assignment.num_pairs


class TestSortingProperties:
    @given(st.lists(st.floats(0.1, 100.0), min_size=0, max_size=50), st.randoms())
    @settings(max_examples=100)
    def test_filter_commutes_with_sort(self, depth_list, rnd):
        depths = np.asarray(depth_list)
        ids = np.arange(len(depth_list))
        keep = np.array([rnd.random() < 0.5 for _ in depth_list], dtype=bool)
        sorted_all = depth_sort(depths, ids)
        filtered_after = sorted_all[keep[sorted_all]] if len(depth_list) else sorted_all
        sorted_subset = depth_sort(depths[keep], ids[keep])
        assert np.array_equal(filtered_after, sorted_subset)

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_sort_is_permutation(self, depth_list):
        depths = np.asarray(depth_list)
        ids = np.arange(len(depth_list))
        out = depth_sort(depths, ids)
        assert sorted(out.tolist()) == ids.tolist()
        assert np.all(np.diff(depths[out]) >= 0)


class TestAlphaProperties:
    @given(
        st.floats(-50, 50),
        st.floats(-50, 50),
        st.floats(0.05, 20.0),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=200)
    def test_alpha_bounded(self, px, py, sigma, opacity):
        conic = np.array([1.0 / sigma**2, 0.0, 1.0 / sigma**2])
        a = compute_alpha(
            np.array([px]), np.array([py]), np.array([0.0, 0.0]), conic, opacity
        )
        assert 0.0 <= a[0] <= min(opacity, MAX_ALPHA) + 1e-12

    @given(st.floats(0.05, 20.0), st.floats(0.05, 0.99))
    @settings(max_examples=100)
    def test_alpha_radially_decreasing(self, sigma, opacity):
        conic = np.array([1.0 / sigma**2, 0.0, 1.0 / sigma**2])
        radii = np.linspace(0, 5 * sigma, 30)
        a = compute_alpha(radii, np.zeros_like(radii), np.array([0.0, 0.0]), conic, opacity)
        assert np.all(np.diff(a) <= 1e-15)

"""Test package."""

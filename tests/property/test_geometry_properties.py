"""Property-based tests (hypothesis) on the geometric substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.covariance import build_3d_covariances
from repro.gaussians.projection import _eigendecompose_2x2
from repro.gaussians.rotation import quaternion_to_rotation_matrix
from repro.tiles.grid import TileGrid

finite = st.floats(allow_nan=False, allow_infinity=False)


@st.composite
def quaternions(draw):
    q = [draw(st.floats(-10, 10)) for _ in range(4)]
    # Reject near-zero quaternions (normalised to identity anyway).
    if sum(abs(v) for v in q) < 1e-3:
        q[0] = 1.0
    return np.array([q])


class TestRotationProperties:
    @given(quaternions())
    @settings(max_examples=100)
    def test_rotation_orthonormal(self, q):
        rot = quaternion_to_rotation_matrix(q)[0]
        assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-9)
        assert np.linalg.det(rot) > 0.0

    @given(
        quaternions(),
        st.lists(st.floats(0.01, 10.0), min_size=3, max_size=3),
    )
    @settings(max_examples=100)
    def test_covariance_psd_with_expected_eigvals(self, q, scales):
        cov = build_3d_covariances(np.array([scales]), q)[0]
        eig = np.sort(np.linalg.eigvalsh(cov))
        assert np.all(eig > 0)
        assert np.allclose(eig, np.sort(np.square(scales)), rtol=1e-6)


@st.composite
def spd_2x2(draw):
    """A random symmetric positive-definite 2x2 matrix."""
    a = draw(st.floats(0.05, 50.0))
    c = draw(st.floats(0.05, 50.0))
    # |b| < sqrt(ac) guarantees positive determinant.
    frac = draw(st.floats(-0.99, 0.99))
    b = frac * np.sqrt(a * c)
    return np.array([[[a, b], [b, c]]])


class TestEigendecompositionProperties:
    @given(spd_2x2())
    @settings(max_examples=200)
    def test_reconstruction(self, cov):
        eigvals, eigvecs = _eigendecompose_2x2(cov)
        recon = eigvecs[0] @ np.diag(eigvals[0]) @ eigvecs[0].T
        # Absolute error scales with the matrix magnitude.
        tol = 1e-8 * float(np.max(np.abs(cov))) + 1e-12
        assert np.allclose(recon, cov[0], rtol=0.0, atol=tol)

    @given(spd_2x2())
    @settings(max_examples=200)
    def test_ordering_and_orthonormality(self, cov):
        eigvals, eigvecs = _eigendecompose_2x2(cov)
        assert eigvals[0, 0] >= eigvals[0, 1] > 0
        assert np.allclose(eigvecs[0].T @ eigvecs[0], np.eye(2), atol=1e-9)


class TestTileGridProperties:
    @given(
        st.integers(1, 200),
        st.integers(1, 200),
        st.integers(2, 64),
    )
    @settings(max_examples=200, deadline=None)
    def test_tiles_cover_image_exactly(self, width, height, tile_size):
        grid = TileGrid(width, height, tile_size)
        area = sum(grid.num_pixels_in_tile(t) for t in range(grid.num_tiles))
        assert area == width * height

    @given(
        st.integers(1, 200),
        st.integers(1, 200),
        st.integers(2, 64),
        st.floats(-300, 300),
        st.floats(-300, 300),
        st.floats(0.01, 300),
        st.floats(0.01, 300),
    )
    @settings(max_examples=200, deadline=None)
    def test_tile_range_covers_overlapping_tiles(
        self, width, height, tile_size, x0, y0, dx, dy
    ):
        """Every tile whose rect overlaps the query rect lies inside the
        returned range."""
        grid = TileGrid(width, height, tile_size)
        x1, y1 = x0 + dx, y0 + dy
        tx0, ty0, tx1, ty1 = grid.tile_range_for_rect(x0, y0, x1, y1)
        in_range = set(grid.tiles_in_range(tx0, ty0, tx1, ty1).tolist())
        for tile_id in range(grid.num_tiles):
            rx0, ry0, rx1, ry1 = grid.tile_rect(tile_id)
            overlaps = rx0 < x1 and rx1 > x0 and ry0 < y1 and ry1 > y0
            if overlaps:
                assert tile_id in in_range

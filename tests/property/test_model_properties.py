"""Property-based tests on the performance models and compression."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.quantization import _quantize_array
from repro.hardware.pipeline_sim import _schedule
from repro.metrics import mse, psnr
from repro.sorting.bitonic import bitonic_comparator_count, bitonic_depth
from repro.sorting.quicksort import counting_quicksort


@st.composite
def unit_lists(draw):
    n = draw(st.integers(1, 20))
    return [
        [
            draw(st.floats(0.0, 1000.0)),
            draw(st.floats(0.0, 1000.0)),
            draw(st.floats(0.0, 1000.0)),
        ]
        for _ in range(n)
    ]


class TestSchedulerProperties:
    @given(unit_lists(), st.integers(1, 8))
    @settings(max_examples=100)
    def test_bounded_by_sum_and_stage_busy(self, units, cores):
        total = _schedule(units, cores)
        # Upper bound: fully serial execution of everything.
        serial = sum(sum(u) for u in units)
        assert total <= serial + 1e-6
        # Lower bounds: the shared DRAM channel and the widest per-core
        # stage cannot be beaten.
        fetch_total = sum(u[0] for u in units)
        rm_total = sum(u[2] for u in units)
        assert total >= fetch_total - 1e-6
        assert total >= rm_total / cores - 1e-6
        # And never less than the single largest unit's critical path.
        assert total >= max(sum(u) for u in units) - 1e-6

    @given(unit_lists())
    @settings(max_examples=100)
    def test_more_cores_never_slower(self, units):
        assert _schedule(units, 8) <= _schedule(units, 2) + 1e-6


class TestSortingProperties:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_quicksort_always_sorted_permutation(self, values):
        keys = np.asarray(values, dtype=np.float64)
        result = counting_quicksort(keys)
        assert sorted(result.order.tolist()) == list(range(len(values)))
        out = keys[result.order]
        assert np.all(out[:-1] <= out[1:]) if len(values) > 1 else True

    @given(st.integers(1, 4096))
    @settings(max_examples=200)
    def test_bitonic_work_at_least_depth(self, n):
        if n == 1:
            assert bitonic_comparator_count(n) == 0
        else:
            assert bitonic_comparator_count(n) >= bitonic_depth(n)


class TestMetricProperties:
    @given(
        st.integers(2, 20),
        st.integers(2, 20),
        st.integers(0, 2**31 - 1),
        st.floats(0.0, 0.5),
    )
    @settings(max_examples=80)
    def test_psnr_mse_consistency(self, h, w, seed, noise):
        rng = np.random.default_rng(seed)
        a = rng.random((h, w, 3))
        b = np.clip(a + rng.normal(0, noise, a.shape), 0, 1)
        err = mse(a, b)
        if err == 0:
            assert psnr(a, b) == float("inf")
        else:
            assert psnr(a, b) == 10 * np.log10(1.0 / err)

    @given(st.integers(2, 20), st.integers(0, 2**31 - 1))
    @settings(max_examples=50)
    def test_mse_triangle_like_bound(self, size, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((size, size))
        b = rng.random((size, size))
        c = rng.random((size, size))
        # sqrt(mse) is the scaled L2 norm and satisfies the triangle
        # inequality.
        assert np.sqrt(mse(a, c)) <= np.sqrt(mse(a, b)) + np.sqrt(mse(b, c)) + 1e-12


class TestQuantizationProperties:
    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=200),
        st.integers(1, 12),
    )
    @settings(max_examples=100)
    def test_quantization_error_bound(self, values, bits):
        arr = np.asarray(values, dtype=np.float64)
        out = _quantize_array(arr, bits)
        span = arr.max() - arr.min()
        if span == 0:
            assert np.allclose(out, arr)
        else:
            step = span / ((1 << bits) - 1)
            assert np.max(np.abs(out - arr)) <= step / 2 + 1e-9 * span

    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=100),
        st.integers(1, 12),
    )
    @settings(max_examples=100)
    def test_quantization_idempotent(self, values, bits):
        arr = np.asarray(values, dtype=np.float64)
        once = _quantize_array(arr, bits)
        twice = _quantize_array(once, bits)
        assert np.allclose(once, twice, atol=1e-9)

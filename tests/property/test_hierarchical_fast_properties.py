"""Hypothesis equivalence: hierarchical fast path vs the reference.

For *any* random scene, boundary method and (tile, group, super) level
triple, the engine's vectorized two-level path must produce the same
image, the same ``per_tile_alpha`` profile and the same
``num_filter_checks`` as the retained reference
``HierarchicalGSTGRenderer.render`` — the acceptance property of the
sweep-scale fast path.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchical import HierarchicalGSTGRenderer
from repro.engine import RenderEngine
from repro.gaussians.camera import Camera
from repro.gaussians.cloud import GaussianCloud
from repro.tiles.boundary import BoundaryMethod

#: (tile, group, super) level triples, including the degenerate
#: super == group collapse and non-multiple-of-image sizes.
LEVEL_TRIPLES = (
    (16, 64, 128),
    (16, 64, 64),
    (8, 32, 64),
    (8, 16, 64),
    (16, 32, 96),
)


@st.composite
def clouds(draw, max_n=24):
    n = draw(st.integers(1, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return GaussianCloud(
        positions=np.stack(
            [
                rng.uniform(-4, 4, n),
                rng.uniform(-4, 4, n),
                rng.uniform(1.0, 15.0, n),
            ],
            axis=1,
        ),
        scales=rng.uniform(0.02, 0.8, (n, 3)),
        rotations=rng.normal(size=(n, 4)) + np.array([2.0, 0, 0, 0]),
        opacities=rng.uniform(0.01, 0.99, n),
        sh_coeffs=rng.normal(0, 0.5, (n, 4, 3)),
    )


@st.composite
def cameras(draw):
    width = draw(st.integers(40, 176))
    height = draw(st.integers(40, 144))
    focal = draw(st.floats(50.0, 160.0))
    return Camera(width=width, height=height, fx=focal, fy=focal)


class TestHierarchicalFastPathProperty:
    @given(
        clouds(),
        cameras(),
        st.sampled_from(LEVEL_TRIPLES),
        st.sampled_from(list(BoundaryMethod)),
    )
    @settings(max_examples=20, deadline=None)
    def test_bit_identical_to_reference(self, cloud, camera, levels, method):
        renderer = HierarchicalGSTGRenderer(*levels, method)
        reference = renderer.render(cloud, camera)
        fast = RenderEngine(renderer).render(cloud, camera)
        assert np.array_equal(reference.image, fast.image)
        assert (
            list(reference.stats.per_tile_alpha.items())
            == list(fast.stats.per_tile_alpha.items())
        )
        assert (
            reference.stats.num_filter_checks == fast.stats.num_filter_checks
        )

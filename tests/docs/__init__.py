"""Documentation checks: links resolve, snippets run."""

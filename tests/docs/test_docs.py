"""The docs stay true: links resolve and code snippets run.

Two properties over ``docs/*.md`` (plus the README's links):

* **Internal links resolve** — every relative markdown link points at a
  file that exists, and every ``#anchor`` (own-page or cross-page)
  matches a real heading under GitHub's anchor rules.
* **Python snippets are runnable** — every fenced ``python`` block in
  ``docs/`` executes successfully, unless an adjacent
  ``<!-- docs: no-run ... -->`` comment opts it out (for fragments that
  need external state, e.g. a running server).  Snippets run in an
  isolated namespace with the working directory pointed at a temp dir,
  so they cannot litter the repository.

Keep doc snippets small (tiny scenes, few views): this module runs in
tier-1 and in the CI docs job.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOC_FILES = sorted((REPO / "docs").glob("*.md"))
LINK_FILES = DOC_FILES + [REPO / "README.md"]

#: ``[text](target)`` — good enough for these hand-written pages.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\w*)\s*$")
_NO_RUN = "docs: no-run"


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor rule (lowercase, strip, hyphenate)."""
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> "set[str]":
    """Every heading anchor a markdown file defines."""
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line) or line.startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            anchors.add(github_anchor(line.lstrip("#")))
    return anchors


def iter_links(path: Path) -> "list[str]":
    """All link targets in a file, fenced code excluded."""
    links = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            links.extend(_LINK.findall(line))
    return links


def iter_snippets(path: Path) -> "list[tuple[int, str, bool]]":
    """``(first_line, code, should_run)`` for every python fence."""
    lines = path.read_text(encoding="utf-8").splitlines()
    snippets = []
    index = 0
    while index < len(lines):
        match = _FENCE.match(lines[index])
        if match and match.group(1) == "python":
            # An opt-out comment within the two preceding non-empty lines.
            preceding = [line for line in lines[:index] if line.strip()][-2:]
            should_run = not any(_NO_RUN in line for line in preceding)
            body = []
            index += 1
            start = index + 1
            while index < len(lines) and not lines[index].startswith("```"):
                body.append(lines[index])
                index += 1
            snippets.append((start, "\n".join(body), should_run))
        index += 1
    return snippets


def test_docs_exist():
    """The documented pages the README points at are actually there."""
    names = {path.name for path in DOC_FILES}
    assert {"architecture.md", "serving.md", "benchmarks.md"} <= names


@pytest.mark.parametrize("path", LINK_FILES, ids=lambda p: p.name)
def test_internal_links_resolve(path):
    for target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        dest = (path.parent / base).resolve() if base else path
        assert dest.exists(), f"{path.name}: broken link -> {target}"
        if anchor and dest.suffix == ".md":
            assert github_anchor(anchor) in anchors_of(dest), (
                f"{path.name}: link -> {target} names a missing heading"
            )


def _doc_snippet_params():
    params = []
    for path in DOC_FILES:
        for line, code, should_run in iter_snippets(path):
            params.append(
                pytest.param(
                    code, should_run, id=f"{path.name}:{line}"
                )
            )
    return params


@pytest.mark.parametrize("code,should_run", _doc_snippet_params())
def test_doc_snippets_run(code, should_run, tmp_path, monkeypatch):
    if not should_run:
        compile(code, "<docs snippet>", "exec")  # at least parse
        pytest.skip("snippet opted out via 'docs: no-run'")
    monkeypatch.chdir(tmp_path)
    namespace = {"__name__": "__docs__"}
    exec(compile(code, "<docs snippet>", "exec"), namespace)


def test_snippet_collection_finds_the_runnable_examples():
    """Guard the harness itself: the pages keep runnable snippets, and
    the no-run opt-out is actually being honoured somewhere."""
    all_params = _doc_snippet_params()
    assert len(all_params) >= 4
    runnable = [p for p in all_params if p.values[1]]
    skipped = [p for p in all_params if not p.values[1]]
    assert runnable and skipped

"""End-to-end integration tests across the whole stack.

These exercise the public API exactly as the examples do: load a Table II
scene, render it through both pipelines, run both accelerator simulations
and check the paper's headline invariants hold together.
"""

import numpy as np
import pytest

from repro import BaselineRenderer, BoundaryMethod, GSTGRenderer, load_scene
from repro.analysis.gpu_model import baseline_frame_times, gstg_frame_times
from repro.gaussians.quantize import to_half
from repro.hardware import (
    GSTG_CONFIG,
    energy_report,
    simulate_baseline,
    simulate_gstg,
)


@pytest.fixture(scope="module")
def scene():
    return load_scene("playroom", resolution_scale=0.07, seed=0)


@pytest.fixture(scope="module")
def renders(scene):
    base = BaselineRenderer(16, BoundaryMethod.ELLIPSE).render(scene.cloud, scene.camera)
    ours = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE).render(scene.cloud, scene.camera)
    return base, ours


class TestEndToEnd:
    def test_lossless_on_real_scene(self, renders):
        base, ours = renders
        assert np.array_equal(base.image, ours.image)

    def test_sorting_reduction_on_real_scene(self, renders):
        base, ours = renders
        reduction = base.stats.sort.num_keys / max(ours.stats.sort.num_keys, 1)
        # At 16+64 with realistic footprints the reduction is severalfold.
        assert reduction > 2.0

    def test_gpu_model_end_to_end(self, renders):
        base, ours = renders
        base_t = baseline_frame_times(base.stats)
        ours_t = gstg_frame_times(ours.stats)
        assert base_t.total > 0
        assert ours_t.sorting < base_t.sorting

    def test_accelerator_end_to_end(self, scene, renders):
        base, ours = renders
        w, h = scene.camera.width, scene.camera.height
        b = simulate_baseline(base.stats, w, h)
        g = simulate_gstg(ours.stats, w, h)
        assert g.cycles <= b.cycles * 1.001
        eb = energy_report(b, GSTG_CONFIG, ("PM", "GSM", "RM", "Buffer"))
        eg = energy_report(g, GSTG_CONFIG)
        assert eg.efficiency_vs(eb) > 1.0

    def test_fp16_quantisation_composes_with_pipeline(self, scene):
        """The paper's methodology: models are converted to FP16 before
        evaluation.  The quantised cloud must flow through the whole
        pipeline and stay lossless GS-TG-vs-baseline."""
        half = to_half(scene.cloud)
        base = BaselineRenderer(16, BoundaryMethod.ELLIPSE).render(half, scene.camera)
        ours = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE).render(half, scene.camera)
        assert np.array_equal(base.image, ours.image)

    def test_fp16_close_to_fp32_render(self, scene, renders):
        base, _ = renders
        half = to_half(scene.cloud)
        base_half = BaselineRenderer(16, BoundaryMethod.ELLIPSE).render(
            half, scene.camera
        )
        # Half precision perturbs the image only slightly.
        diff = np.abs(base_half.image - base.image).mean()
        assert diff < 0.05

    def test_public_api_surface(self):
        import repro

        for name in ("BaselineRenderer", "GSTGRenderer", "BoundaryMethod", "load_scene"):
            assert hasattr(repro, name)

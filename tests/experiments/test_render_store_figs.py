"""The figure sweeps over a shared render store: rows unchanged.

Satellite checks for the ``render_store`` wiring: the fig3/fig11/fig12/
fig13 harnesses and ``run_multiview`` produce **identical rows** when
their renders go through a :class:`SharedRenderCache`, and overlapping
configurations across *separate* ``RenderCache`` instances (the
situation of separately-launched sweep processes) are rendered once and
served from the store afterwards.
"""

import pytest

from repro.experiments.cache import RenderCache
from repro.experiments.fig03 import run_fig3
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13
from repro.experiments.multiview import run_multiview
from repro.serve.render_cache import SharedRenderCache

#: Tiny sweep configuration: one scene, scaled-down resolution.
SCALE = 0.05
SCENES = ("train",)


@pytest.fixture(scope="module")
def store():
    with SharedRenderCache() as cache:
        yield cache


def fresh_cache(store=None):
    return RenderCache(resolution_scale=SCALE, seed=0, render_store=store)


class TestRowsUnchanged:
    def test_fig11_fig12_share_store_rows_unchanged(self, store):
        reference11 = run_fig11(fresh_cache(), scenes=SCENES)
        reference12 = run_fig12(fresh_cache(), scenes=SCENES)

        # Fresh RenderCache per harness (as separate sweep processes
        # would have), one shared store between them.
        rows11 = run_fig11(fresh_cache(store), scenes=SCENES)
        stores_after_11 = store.stats()["stores"]
        rows12 = run_fig12(fresh_cache(store), scenes=SCENES)
        stats = store.stats()

        assert rows11 == reference11
        assert rows12 == reference12

        # fig11 rendered 1 baseline + 5 GS-TG configs per scene ...
        assert stores_after_11 == 6 * len(SCENES)
        # ... and fig12 reused fig11's overlap (baseline 16/ellipse and
        # GS-TG 16+64 ellipse+ellipse) instead of re-rendering it.
        assert stats["hits"] >= 2 * len(SCENES)
        requested_configs = 6 * len(SCENES) + 12 * len(SCENES)
        assert stats["stores"] < requested_configs

    def test_fig3_fig13_rows_unchanged(self, store):
        reference3 = run_fig3(fresh_cache(), scenes=SCENES, tile_sizes=(16, 32))
        rows3 = run_fig3(fresh_cache(store), scenes=SCENES, tile_sizes=(16, 32))
        assert rows3 == reference3

        reference13 = run_fig13(fresh_cache(), scene=SCENES[0])
        rows13 = run_fig13(fresh_cache(store), scene=SCENES[0])
        assert rows13 == reference13

        # A re-run with yet another fresh RenderCache is all hits.
        before = store.stats()["stores"]
        again = run_fig13(fresh_cache(store), scene=SCENES[0])
        assert again == reference13
        assert store.stats()["stores"] == before

    def test_base_render_projected_once_per_scene(self):
        """The ROADMAP item behind this wiring: one projection per scene
        across every tile/group/boundary combo of a sweep."""
        cache = fresh_cache()
        run_fig11(cache, scenes=SCENES)
        run_fig12(cache, scenes=SCENES)
        assert len(cache._proj_cache) == len(SCENES)


class TestMultiview:
    def test_multiview_rows_unchanged_and_reused(self):
        kwargs = dict(num_views=6, resolution_scale=SCALE, seed=0)
        reference = run_multiview("train", **kwargs)
        with SharedRenderCache() as store:
            rows = run_multiview("train", render_store=store, **kwargs)
            assert rows == reference
            stores_after_first = store.stats()["stores"]
            assert stores_after_first > 0
            again = run_multiview("train", render_store=store, **kwargs)
            assert again == reference
            assert store.stats()["stores"] == stores_after_first

"""Tests for the shared-memory projection cache."""

import numpy as np
import pytest

from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.experiments.shm_cache import SharedProjectionCache, cloud_fingerprint
from repro.gaussians.camera import Camera
from repro.gaussians.projection import ProjectedGaussians, project
from repro.tiles.boundary import BoundaryMethod
from tests.conftest import make_cloud

_ARRAY_FIELDS = (
    "indices",
    "depths",
    "means2d",
    "cov2d",
    "conics",
    "colors",
    "opacities",
    "eigvals",
    "eigvecs",
    "radii",
)


@pytest.fixture
def scene():
    rng = np.random.default_rng(9)
    camera = Camera(width=96, height=64, fx=90.0, fy=90.0)
    return make_cloud(40, rng), camera


class TestRoundTrip:
    def test_projection_bit_identical(self, scene):
        cloud, camera = scene
        reference = project(cloud, camera)
        with SharedProjectionCache() as cache:
            stored = cache.projection(cloud, camera)       # miss: the original
            loaded = cache.projection(cloud, camera)       # hit: from shm
            assert isinstance(loaded, ProjectedGaussians)
            for reconstructed in (stored, loaded):
                for field in _ARRAY_FIELDS:
                    assert np.array_equal(
                        getattr(reconstructed, field), getattr(reference, field)
                    ), field
                assert np.array_equal(
                    reconstructed.culling.visible, reference.culling.visible
                )
                assert (
                    reconstructed.culling.num_input == reference.culling.num_input
                )

    def test_loaded_arrays_are_read_only(self, scene):
        cloud, camera = scene
        with SharedProjectionCache() as cache:
            cache.projection(cloud, camera)
            loaded = cache.projection(cloud, camera)
            with pytest.raises(ValueError):
                loaded.depths[0] = 0.0

    def test_hit_and_miss_accounting(self, scene):
        cloud, camera = scene
        other = Camera(width=96, height=64, fx=80.0, fy=90.0)
        with SharedProjectionCache() as cache:
            cache.projection(cloud, camera)
            cache.projection(cloud, camera)
            cache.projection(cloud, other)
            assert cache.stats() == {"hits": 1, "misses": 2}
            assert len(cache) == 2

    def test_equal_clouds_share_entries(self, scene):
        """Keys are content fingerprints, not object identities."""
        cloud, camera = scene
        rng = np.random.default_rng(9)
        twin = make_cloud(40, rng)
        assert cloud_fingerprint(cloud) == cloud_fingerprint(twin)
        with SharedProjectionCache() as cache:
            first = cache.projection(cloud, camera)
            second = cache.projection(twin, camera)
            assert cache.stats() == {"hits": 1, "misses": 1}
            assert np.array_equal(first.depths, second.depths)

    def test_eviction_bounds_entries(self, scene):
        cloud, camera = scene
        with SharedProjectionCache(max_entries=2) as cache:
            for focal in (60.0, 70.0, 80.0):
                cache.projection(
                    cloud, Camera(width=96, height=64, fx=focal, fy=focal)
                )
            assert len(cache) == 2

    def test_close_unlinks_segments(self, scene):
        from multiprocessing import shared_memory

        cloud, camera = scene
        cache = SharedProjectionCache()
        cache.projection(cloud, camera)
        names = [entry[0] for entry in cache._index.values()]
        cache.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        cache.close()  # idempotent


class TestTeardownFallback:
    """Segments must be unlinked even when close() is never reached."""

    def test_gc_unlinks_segments(self, scene):
        import gc

        cloud, camera = scene
        cache = SharedProjectionCache()
        cache.projection(cloud, camera)
        names = [entry[0] for entry in cache._index.values()]
        assert names
        del cache
        gc.collect()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_abnormal_exit_unlinks_segments(self, tmp_path):
        """A process that dies on an uncaught exception mid-render (no
        close(), no context manager) must still unlink its segments via
        the finalize/atexit fallback."""
        import subprocess
        import sys

        script = tmp_path / "crash.py"
        script.write_text(
            "import numpy as np\n"
            "from repro.experiments.shm_cache import SharedProjectionCache\n"
            "from repro.gaussians.camera import Camera\n"
            "from tests.conftest import make_cloud\n"
            "cloud = make_cloud(10, np.random.default_rng(0))\n"
            "camera = Camera(width=48, height=32, fx=40.0, fy=40.0)\n"
            "cache = SharedProjectionCache()\n"
            "cache.projection(cloud, camera)\n"
            "print([e[0] for e in cache._index.values()], flush=True)\n"
            "raise RuntimeError('worker crashed mid-render')\n"
        )
        import os

        env = dict(os.environ)
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in (
                os.path.join(repo_root, "src"),
                repo_root,
                env.get("PYTHONPATH", ""),
            )
            if p
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode != 0  # it really did crash
        names = eval(proc.stdout.strip().splitlines()[-1])
        assert names
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_close_after_finalize_is_noop(self, scene):
        cloud, camera = scene
        cache = SharedProjectionCache()
        cache.projection(cloud, camera)
        cache._finalizer()  # simulate the gc/exit path firing first
        cache.close()  # must not raise
        cache.close()


class TestCrossProcess:
    def test_workers_reuse_projections(self, scene):
        """A second trajectory over the same views re-projects nothing:
        the worker processes hit the shared segments instead."""
        cloud, camera = scene
        cameras = [
            Camera(width=96, height=64, fx=85.0 + i, fy=85.0 + i)
            for i in range(3)
        ]
        renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
        with SharedProjectionCache() as cache:
            engine = RenderEngine(renderer, cache=cache)
            first = engine.render_trajectory(cloud, cameras, workers=2)
            misses_after_first = cache.stats()["misses"]
            assert misses_after_first == len(cameras)
            second = engine.render_trajectory(cloud, cameras, workers=2)
            stats = cache.stats()
            assert stats["misses"] == misses_after_first
            assert stats["hits"] >= len(cameras)
        plain = RenderEngine(GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE))
        reference = plain.render_trajectory(cloud, cameras)
        for result, ref in zip(second.results, reference.results):
            assert np.array_equal(result.image, ref.image)
        for result, ref in zip(first.results, reference.results):
            assert np.array_equal(result.image, ref.image)

"""Tests for the multi-view evaluation driver."""

from repro.experiments.multiview import run_multiview


class TestMultiview:
    def test_rows_follow_split(self):
        rows = run_multiview(
            "playroom", num_views=16, resolution_scale=0.05, seed=1
        )
        # playroom: every 8th view -> indices 0 and 8.
        assert [r.view_index for r in rows] == [0, 8]

    def test_all_views_lossless(self):
        rows = run_multiview(
            "playroom", num_views=8, resolution_scale=0.05, seed=1
        )
        assert all(r.lossless for r in rows)

    def test_speedup_field(self):
        rows = run_multiview(
            "playroom", num_views=8, resolution_scale=0.05, seed=1
        )
        for r in rows:
            assert r.speedup == r.baseline_ms / r.gstg_ms
            assert r.speedup > 0

    def test_workers_identical_rows(self):
        """The worker-pool path (shared-memory projection cache spanning
        both pipelines' pools) reproduces the serial rows exactly."""
        serial = run_multiview(
            "playroom", num_views=16, resolution_scale=0.05, seed=1
        )
        pooled = run_multiview(
            "playroom", num_views=16, resolution_scale=0.05, seed=1, workers=2
        )
        assert serial == pooled

"""Smoke test of the EXPERIMENTS.md generator at a tiny scale."""

import pytest

from repro.experiments.report import generate_report


@pytest.mark.slow
def test_generate_report_contains_all_sections():
    report = generate_report(resolution_scale=0.05, seed=0)
    for heading in (
        "# EXPERIMENTS",
        "## Table I",
        "## Fig. 5",
        "## Fig. 3",
        "## Fig. 11",
        "## Fig. 12",
        "## Fig. 13",
        "## Figs. 14 & 15",
        "## Table II",
        "## Table III",
    ):
        assert heading in report
    # Paper anchors are quoted next to measured values.
    assert "paper 1.33" in report
    assert "geomean" in report
    # Markdown tables are well formed: every table row line has pipes.
    lines = [l for l in report.splitlines() if l.startswith("|")]
    assert all(l.endswith("|") for l in lines)

"""Test package."""

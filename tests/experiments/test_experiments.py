"""Tests for the experiment drivers, run at a reduced scale.

These validate the *plumbing* (row shapes, normalisations, caching) and
the cheap paper trends; the full-scale shape reproduction lives in the
benchmark harnesses.
"""

import numpy as np
import pytest

from repro.experiments import (
    RenderCache,
    run_fig3,
    run_fig11,
    run_fig12,
    run_fig13,
    run_hardware_eval,
    run_profiling_sweep,
)
from repro.experiments.hardware_eval import geomean
from repro.tiles.boundary import BoundaryMethod


@pytest.fixture(scope="module")
def cache():
    """A small, shared cache: tiny scenes keep the module fast."""
    return RenderCache(resolution_scale=0.06, seed=0)


class TestRenderCache:
    def test_scene_memoised(self, cache):
        assert cache.scene("playroom") is cache.scene("playroom")

    def test_assignment_memoised(self, cache):
        a = cache.assignment("playroom", 16, BoundaryMethod.AABB)
        b = cache.assignment("playroom", 16, "aabb")
        assert a is b

    def test_baseline_render_memoised(self, cache):
        a = cache.baseline_render("playroom", 16, BoundaryMethod.AABB)
        assert a is cache.baseline_render("playroom", 16, BoundaryMethod.AABB)

    def test_distinct_configs_not_conflated(self, cache):
        a = cache.assignment("playroom", 16, BoundaryMethod.AABB)
        b = cache.assignment("playroom", 32, BoundaryMethod.AABB)
        assert a is not b


class TestProfilingSweep:
    def test_row_grid_complete(self, cache):
        rows = run_profiling_sweep(cache, scenes=("playroom",))
        # 2 methods x 4 tile sizes.
        assert len(rows) == 8

    def test_trends(self, cache):
        rows = run_profiling_sweep(cache, scenes=("playroom",),
                                   methods=(BoundaryMethod.AABB,))
        by_ts = {r.tile_size: r for r in rows}
        assert by_ts[8].tiles_per_gaussian > by_ts[64].tiles_per_gaussian
        assert by_ts[8].shared_percent > by_ts[64].shared_percent
        assert by_ts[8].gaussians_per_pixel < by_ts[64].gaussians_per_pixel


class TestFig3:
    def test_stage_trends(self, cache):
        rows = run_fig3(cache, scenes=("playroom",),
                        methods=(BoundaryMethod.ELLIPSE,))
        by_ts = {r.tile_size: r for r in rows}
        assert by_ts[8].sorting_ms > by_ts[64].sorting_ms
        assert by_ts[8].preprocessing_ms > by_ts[64].preprocessing_ms
        assert by_ts[8].rasterization_ms < by_ts[64].rasterization_ms

    def test_total_is_sum(self, cache):
        rows = run_fig3(cache, scenes=("playroom",), methods=(BoundaryMethod.AABB,),
                        tile_sizes=(16,))
        r = rows[0]
        assert r.total_ms == pytest.approx(
            r.preprocessing_ms + r.sorting_ms + r.rasterization_ms
        )


class TestFig11:
    def test_labels_and_reference(self, cache):
        rows = run_fig11(cache, scenes=("playroom",), combos=((16, 32), (16, 64)))
        assert [r.label for r in rows] == ["16+32", "16+64"]
        # Same scene -> same reference baseline.
        assert rows[0].baseline_ms == rows[1].baseline_ms
        for r in rows:
            assert r.speedup == pytest.approx(r.baseline_ms / r.gstg_ms)


class TestFig12:
    def test_rows_complete_and_normalised(self, cache):
        rows = run_fig12(cache, scenes=("playroom",))
        baselines = [r for r in rows if r.kind == "baseline"]
        ours = [r for r in rows if r.kind == "gstg"]
        assert len(baselines) == 3
        assert len(ours) == 9
        aabb = next(r for r in baselines if r.group_method == "aabb")
        assert aabb.speedup_vs_aabb == pytest.approx(1.0)

    def test_same_boundary_gstg_wins(self, cache):
        """Paper finding (2): at matched boundaries GS-TG beats baseline."""
        rows = run_fig12(cache, scenes=("playroom",))
        for method in ("aabb", "obb", "ellipse"):
            base = next(
                r for r in rows if r.kind == "baseline" and r.group_method == method
            )
            ours = next(
                r
                for r in rows
                if r.kind == "gstg"
                and r.group_method == method
                and r.bitmask_method == method
            )
            assert ours.speedup_vs_aabb > base.speedup_vs_aabb


class TestFig13:
    def test_rows(self, cache):
        rows = run_fig13(cache, scene="playroom")
        assert [r.config for r in rows] == ["16x16", "32x32", "64x64", "ours"]

    def test_gstg_sort_matches_64(self, cache):
        rows = {r.config: r for r in run_fig13(cache, scene="playroom")}
        assert rows["ours"].sorting_ms == pytest.approx(rows["64x64"].sorting_ms, rel=0.35)

    def test_gstg_raster_matches_16(self, cache):
        rows = {r.config: r for r in run_fig13(cache, scene="playroom")}
        assert rows["ours"].rasterization_ms == pytest.approx(
            rows["16x16"].rasterization_ms, rel=0.1
        )


class TestHardwareEval:
    def test_row_fields(self, cache):
        rows = run_hardware_eval(cache, scenes=("playroom",))
        r = rows[0]
        assert r.gstg_speedup == pytest.approx(r.baseline_ms / r.gstg_ms)
        assert r.gstg_efficiency == pytest.approx(r.baseline_uj / r.gstg_uj)

    def test_gstg_at_least_baseline(self, cache):
        rows = run_hardware_eval(cache, scenes=("playroom", "drjohnson"))
        for r in rows:
            assert r.gstg_speedup >= 0.99
            assert r.gstg_efficiency > 1.0


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([])

"""Unit tests for the baseline tile renderer."""

import numpy as np
import pytest

from repro.raster.renderer import BaselineRenderer
from repro.tiles.boundary import BoundaryMethod
from tests.conftest import make_cloud


class TestBaselineRenderer:
    def test_image_shape_and_finiteness(self, small_cloud, camera):
        result = BaselineRenderer(16, BoundaryMethod.AABB).render(small_cloud, camera)
        assert result.image.shape == (camera.height, camera.width, 3)
        assert np.all(np.isfinite(result.image))
        assert np.all(result.image >= 0.0)

    def test_nonempty_scene_renders_nonzero(self, small_cloud, camera):
        result = BaselineRenderer(16).render(small_cloud, camera)
        assert result.image.max() > 0.0

    def test_tile_size_changes_image_only_marginally(self, small_cloud, camera):
        """Tile size only affects which sub-cutoff 3-sigma-truncated tails
        a pixel sees (a Gaussian's alpha can still slightly exceed 1/255
        just outside its 3-sigma boundary), so images across tile sizes
        agree to a small tolerance — the same truncation behaviour as the
        reference 3D-GS rasteriser."""
        images = [
            BaselineRenderer(ts, BoundaryMethod.ELLIPSE)
            .render(small_cloud, camera)
            .image
            for ts in (8, 16, 64)
        ]
        assert np.allclose(images[0], images[1], atol=0.03)
        assert np.allclose(images[1], images[2], atol=0.03)

    def test_deterministic(self, small_cloud, camera):
        a = BaselineRenderer(16).render(small_cloud, camera).image
        b = BaselineRenderer(16).render(small_cloud, camera).image
        assert np.array_equal(a, b)

    def test_stats_populated(self, small_cloud, camera):
        result = BaselineRenderer(16, BoundaryMethod.ELLIPSE).render(small_cloud, camera)
        stats = result.stats
        assert stats.preprocess.num_input_gaussians == len(small_cloud)
        assert stats.preprocess.num_visible_gaussians == len(result.projected)
        assert stats.preprocess.num_pairs == result.assignment.num_pairs
        assert stats.sort.num_keys == stats.preprocess.num_pairs
        assert stats.raster.num_alpha_computations > 0

    def test_sort_counters_per_nonempty_tile(self, small_cloud, camera):
        result = BaselineRenderer(16).render(small_cloud, camera)
        nonempty = int(np.count_nonzero(result.assignment.gaussians_per_tile()))
        assert result.stats.sort.num_sorts == nonempty

    def test_smaller_tiles_fewer_alpha_computations(self, small_cloud, camera):
        """The Fig. 6/7 effect: larger tiles process more Gaussians per
        pixel, hence more alpha computations."""
        small = BaselineRenderer(8, BoundaryMethod.ELLIPSE).render(small_cloud, camera)
        large = BaselineRenderer(48, BoundaryMethod.ELLIPSE).render(small_cloud, camera)
        assert (
            small.stats.raster.num_alpha_computations
            <= large.stats.raster.num_alpha_computations
        )

    def test_smaller_tiles_more_pairs(self, small_cloud, camera):
        """The Fig. 5 effect: more tiles per Gaussian at small tile sizes."""
        small = BaselineRenderer(8).render(small_cloud, camera)
        large = BaselineRenderer(48).render(small_cloud, camera)
        assert small.stats.preprocess.num_pairs >= large.stats.preprocess.num_pairs

    def test_empty_cloud_far_away(self, rng, camera):
        cloud = make_cloud(10, rng, depth_range=(-50.0, -10.0))
        result = BaselineRenderer(16).render(cloud, camera)
        assert np.allclose(result.image, 0.0)
        assert result.stats.preprocess.num_visible_gaussians == 0

    def test_rejects_bad_tile_size(self):
        with pytest.raises(ValueError):
            BaselineRenderer(0)

    def test_method_tightness_reduces_work(self, small_cloud, camera):
        aabb = BaselineRenderer(16, BoundaryMethod.AABB).render(small_cloud, camera)
        ell = BaselineRenderer(16, BoundaryMethod.ELLIPSE).render(small_cloud, camera)
        assert ell.stats.preprocess.num_pairs <= aabb.stats.preprocess.num_pairs
        assert (
            ell.stats.raster.num_alpha_computations
            <= aabb.stats.raster.num_alpha_computations
        )

    def test_boundary_method_does_not_change_image(self, small_cloud, camera):
        """Culling by any 3-sigma boundary is visually lossless by design:
        all three methods keep every (tile, Gaussian) pair whose alpha can
        exceed the cutoff inside the tile... but AABB/OBB keep more.  The
        rendered image only depends on which pairs are kept, and extra
        pairs contribute only sub-cutoff alphas at <= 3 sigma... so images
        agree exactly for ellipse vs boxes only when extra pairs never
        pass the alpha cut.  We assert near-equality with a tight bound.
        """
        aabb = BaselineRenderer(16, BoundaryMethod.AABB).render(small_cloud, camera)
        ell = BaselineRenderer(16, BoundaryMethod.ELLIPSE).render(small_cloud, camera)
        diff = np.abs(aabb.image - ell.image).max()
        assert diff < 0.05

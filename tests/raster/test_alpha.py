"""Unit tests for alpha computation (Eq. 1)."""

import numpy as np
import pytest

from repro.raster.alpha import ALPHA_CUTOFF, MAX_ALPHA, compute_alpha


class TestComputeAlpha:
    def test_peak_at_centre(self):
        a = compute_alpha(
            np.array([10.0]), np.array([5.0]),
            mean2d=np.array([10.0, 5.0]),
            conic=np.array([1.0, 0.0, 1.0]),
            opacity=0.8,
        )
        assert a[0] == pytest.approx(0.8)

    def test_gaussian_falloff(self):
        # With unit conic, alpha at distance d is opacity * exp(-d^2/2).
        d = 2.0
        a = compute_alpha(
            np.array([d]), np.array([0.0]),
            mean2d=np.array([0.0, 0.0]),
            conic=np.array([1.0, 0.0, 1.0]),
            opacity=1.0,
        )
        assert a[0] == pytest.approx(np.exp(-2.0), rel=1e-12)

    def test_monotone_decay(self):
        xs = np.linspace(0.0, 5.0, 50)
        a = compute_alpha(
            xs, np.zeros_like(xs),
            mean2d=np.array([0.0, 0.0]),
            conic=np.array([1.0, 0.0, 1.0]),
            opacity=0.9,
        )
        assert np.all(np.diff(a) <= 0.0)

    def test_clamped_at_max_alpha(self):
        a = compute_alpha(
            np.array([0.0]), np.array([0.0]),
            mean2d=np.array([0.0, 0.0]),
            conic=np.array([1.0, 0.0, 1.0]),
            opacity=1.0,
        )
        assert a[0] == MAX_ALPHA

    def test_anisotropic_conic(self):
        # conic (4, 0, 1): x-direction decays twice as fast (sigma_x = 1/2).
        ax = compute_alpha(
            np.array([1.0]), np.array([0.0]),
            np.array([0.0, 0.0]), np.array([4.0, 0.0, 1.0]), 1.0,
        )
        ay = compute_alpha(
            np.array([0.0]), np.array([1.0]),
            np.array([0.0, 0.0]), np.array([4.0, 0.0, 1.0]), 1.0,
        )
        assert ax[0] < ay[0]

    def test_correlated_conic_tilts_level_sets(self):
        conic = np.array([1.0, -0.9, 1.0])
        diag = compute_alpha(
            np.array([1.0]), np.array([1.0]), np.array([0.0, 0.0]), conic, 1.0
        )
        anti = compute_alpha(
            np.array([1.0]), np.array([-1.0]), np.array([0.0, 0.0]), conic, 1.0
        )
        assert diag[0] > anti[0]

    def test_grid_shape_preserved(self):
        px, py = np.meshgrid(np.arange(4.0), np.arange(3.0))
        a = compute_alpha(px, py, np.array([0.0, 0.0]), np.array([1.0, 0.0, 1.0]), 0.5)
        assert a.shape == (3, 4)

    def test_cutoff_constant_matches_paper(self):
        assert ALPHA_CUTOFF == pytest.approx(1.0 / 255.0)

    def test_three_sigma_rule_interacts_with_cutoff(self):
        # At 3 sigma, exp(-4.5) ~ 0.011 > 1/255: a fully opaque Gaussian
        # still influences pixels at its boundary, which is why boundary
        # methods must not cut inside 3 sigma.
        a = compute_alpha(
            np.array([3.0]), np.array([0.0]),
            np.array([0.0, 0.0]), np.array([1.0, 0.0, 1.0]), 1.0,
        )
        assert a[0] > ALPHA_CUTOFF

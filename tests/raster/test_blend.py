"""Unit tests for alpha blending (Eq. 2)."""

import numpy as np
import pytest

from repro.gaussians.cloud import GaussianCloud
from repro.gaussians.projection import project
from repro.raster.alpha import ALPHA_CUTOFF
from repro.raster.blend import EARLY_EXIT_TRANSMITTANCE, blend_tile
from repro.raster.stats import RasterCounters


def _project_stack(camera, depths, opacity=0.9, scale=0.5):
    """Several isotropic Gaussians stacked on the optical axis."""
    n = len(depths)
    cloud = GaussianCloud(
        positions=np.array([[0.0, 0.0, d] for d in depths]),
        scales=np.full((n, 3), scale),
        rotations=np.tile([[1.0, 0.0, 0.0, 0.0]], (n, 1)),
        opacities=np.full(n, opacity),
        sh_coeffs=np.zeros((n, 1, 3)),
    )
    return project(cloud, camera)


def _centre_pixel(camera):
    px = np.array([[camera.cx]])
    py = np.array([[camera.cy]])
    return px, py


class TestBlendMath:
    def test_single_gaussian_colour(self, camera):
        proj = _project_stack(camera, [5.0], opacity=0.5)
        px, py = _centre_pixel(camera)
        result = blend_tile(proj, np.array([0]), px, py)
        # colour = alpha * G_RGB; at the centre alpha == opacity.
        assert np.allclose(result.color[0, 0], 0.5 * proj.colors[0])
        assert result.transmittance[0, 0] == pytest.approx(0.5)

    def test_two_gaussians_front_to_back(self, camera):
        proj = _project_stack(camera, [4.0, 8.0], opacity=0.5)
        px, py = _centre_pixel(camera)
        result = blend_tile(proj, np.array([0, 1]), px, py)
        expected = 0.5 * proj.colors[0] + 0.5 * 0.5 * proj.colors[1]
        assert np.allclose(result.color[0, 0], expected)
        assert result.transmittance[0, 0] == pytest.approx(0.25)

    def test_order_matters(self, camera):
        proj = _project_stack(camera, [4.0, 8.0], opacity=0.7)
        # Give them distinguishable colours.
        proj.colors[0] = [1.0, 0.0, 0.0]
        proj.colors[1] = [0.0, 1.0, 0.0]
        px, py = _centre_pixel(camera)
        fwd = blend_tile(proj, np.array([0, 1]), px, py)
        rev = blend_tile(proj, np.array([1, 0]), px, py)
        assert not np.allclose(fwd.color, rev.color)

    def test_insignificant_alpha_skipped(self, camera):
        # A pixel far outside the Gaussian's footprint: alpha falls below
        # the 1/255 cut, so an alpha computation happens but no blend.
        proj = _project_stack(camera, [5.0], opacity=0.9, scale=0.05)
        px = np.array([[camera.cx + 20.0 * proj.radii[0]]])
        py = np.array([[camera.cy]])
        counters = RasterCounters()
        result = blend_tile(proj, np.array([0]), px, py, counters)
        assert np.allclose(result.color, 0.0)
        assert counters.num_alpha_computations == 1
        assert counters.num_blend_operations == 0

    def test_early_exit_stops_processing(self, camera):
        # 200 nearly opaque Gaussians: the pixel must terminate long
        # before the list ends.
        proj = _project_stack(camera, np.linspace(3, 30, 200), opacity=0.99)
        px, py = _centre_pixel(camera)
        counters = RasterCounters()
        result = blend_tile(proj, np.arange(200), px, py, counters)
        assert result.gaussians_processed < 200
        assert result.transmittance[0, 0] < EARLY_EXIT_TRANSMITTANCE
        assert counters.num_early_exit_pixels == 1

    def test_transmittance_monotone_in_count(self, camera):
        proj = _project_stack(camera, [4.0, 6.0, 8.0], opacity=0.4)
        px, py = _centre_pixel(camera)
        t_values = []
        for k in range(1, 4):
            result = blend_tile(proj, np.arange(k), px, py)
            t_values.append(result.transmittance[0, 0])
        assert t_values[0] > t_values[1] > t_values[2]

    def test_empty_list(self, camera):
        proj = _project_stack(camera, [5.0])
        px, py = _centre_pixel(camera)
        result = blend_tile(proj, np.array([], dtype=int), px, py)
        assert np.allclose(result.color, 0.0)
        assert np.allclose(result.transmittance, 1.0)

    def test_mismatched_pixel_grids_rejected(self, camera):
        proj = _project_stack(camera, [5.0])
        with pytest.raises(ValueError):
            blend_tile(proj, np.array([0]), np.zeros((2, 2)), np.zeros((3, 2)))


class TestBlendCounters:
    def test_alpha_count_all_alive(self, camera):
        proj = _project_stack(camera, [4.0, 6.0], opacity=0.3)
        px, py = np.meshgrid(np.arange(4) + 0.5, np.arange(4) + 0.5)
        counters = RasterCounters()
        blend_tile(proj, np.array([0, 1]), px, py, counters)
        # Low opacity: no early exits, so every pixel sees both Gaussians.
        assert counters.num_alpha_computations == 2 * 16
        assert counters.num_pixels == 16
        assert counters.num_tile_passes == 2

    def test_blend_ops_bounded_by_alpha_ops(self, camera):
        proj = _project_stack(camera, np.linspace(3, 10, 20), opacity=0.6)
        px, py = np.meshgrid(np.arange(8) + 0.5, np.arange(8) + 0.5)
        counters = RasterCounters()
        blend_tile(proj, np.arange(20), px, py, counters)
        assert counters.num_blend_operations <= counters.num_alpha_computations

"""Unit tests for the operation counters."""

from repro.raster.stats import (
    RasterCounters,
    RenderStats,
    SortCounters,
    StageCounters,
)


class TestSortCounters:
    def test_record_accumulates(self):
        c = SortCounters()
        c.record(4, 8.0)
        c.record(10, 33.2)
        assert c.num_sorts == 2
        assert c.num_keys == 14
        assert c.num_comparisons == 41.2
        assert c.max_sort_length == 10

    def test_max_tracks_largest(self):
        c = SortCounters()
        for n in (5, 50, 3):
            c.record(n, 0.0)
        assert c.max_sort_length == 50


class TestDefaults:
    def test_stage_counters_zero(self):
        c = StageCounters()
        assert c.num_pairs == 0
        assert c.boundary_test_cost == 1.0

    def test_raster_counters_zero(self):
        c = RasterCounters()
        assert c.num_alpha_computations == 0
        assert c.num_early_exit_pixels == 0

    def test_render_stats_composition(self):
        s = RenderStats()
        assert s.preprocess.num_input_gaussians == 0
        assert s.sort.num_sorts == 0
        assert s.raster.num_pixels == 0
        assert s.num_filter_checks == 0
        assert s.bitmask_bits == 0

    def test_render_stats_instances_independent(self):
        a = RenderStats()
        b = RenderStats()
        a.sort.record(3, 1.0)
        assert b.sort.num_sorts == 0

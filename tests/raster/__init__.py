"""Test package."""

"""Unit tests for depth sorting."""

import numpy as np
import pytest

from repro.raster.sorting import depth_sort, sort_comparison_count


class TestDepthSort:
    def test_orders_by_depth(self):
        depths = np.array([3.0, 1.0, 2.0])
        ids = np.array([10, 11, 12])
        assert depth_sort(depths, ids).tolist() == [11, 12, 10]

    def test_ties_broken_by_id(self):
        depths = np.array([1.0, 1.0, 1.0])
        ids = np.array([5, 2, 9])
        assert depth_sort(depths, ids).tolist() == [2, 5, 9]

    def test_empty(self):
        out = depth_sort(np.array([]), np.array([], dtype=int))
        assert out.size == 0

    def test_filter_preserves_order(self):
        """The GS-TG invariant: filtering a sorted sequence equals sorting
        the filtered subsequence."""
        rng = np.random.default_rng(0)
        depths = rng.random(100)
        ids = np.arange(100)
        sorted_all = depth_sort(depths, ids)
        keep = rng.random(100) < 0.4
        filtered = sorted_all[keep[sorted_all]]
        direct = depth_sort(depths[keep], ids[keep])
        assert np.array_equal(filtered, direct)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            depth_sort(np.zeros(3), np.zeros(4, dtype=int))


class TestComparisonCount:
    def test_zero_and_one(self):
        assert sort_comparison_count(0) == 0.0
        assert sort_comparison_count(1) == 0.0

    def test_nlogn(self):
        assert sort_comparison_count(8) == pytest.approx(24.0)

    def test_monotone(self):
        values = [sort_comparison_count(n) for n in range(1, 200)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sort_comparison_count(-1)

    def test_superlinear(self):
        # Sorting two halves separately must be cheaper than sorting the
        # whole -- the economic basis of sharing sorts across tiles.
        assert 2 * sort_comparison_count(500) < sort_comparison_count(1000)

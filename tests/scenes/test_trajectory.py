"""Unit tests for camera trajectories and the train/test split."""

import numpy as np
import pytest

from repro.gaussians.projection import project
from repro.scenes.synthetic import load_scene
from repro.scenes.trajectory import make_view_set, orbit_cameras, split_views


@pytest.fixture(scope="module")
def scene():
    return load_scene("truck", resolution_scale=0.07, num_gaussians=600, seed=2)


class TestOrbit:
    def test_view_count(self, scene):
        assert len(orbit_cameras(scene, 12)) == 12

    def test_resolution_matches_scene(self, scene):
        cams = orbit_cameras(scene, 4)
        for cam in cams:
            assert cam.width == scene.camera.width
            assert cam.height == scene.camera.height

    def test_views_distinct(self, scene):
        cams = orbit_cameras(scene, 8)
        positions = np.stack([c.position for c in cams])
        assert len(np.unique(np.round(positions, 6), axis=0)) == 8

    def test_constant_orbit_radius(self, scene):
        cams = orbit_cameras(scene, 8)
        radii = [np.linalg.norm(c.position[[0, 2]]) for c in cams]
        assert np.allclose(radii, radii[0])

    def test_every_view_sees_scene(self, scene):
        for cam in orbit_cameras(scene, 6):
            proj = project(scene.cloud, cam)
            assert len(proj) > 0.15 * len(scene.cloud)

    def test_invalid_count_rejected(self, scene):
        with pytest.raises(ValueError):
            orbit_cameras(scene, 0)

    def test_deterministic(self, scene):
        a = orbit_cameras(scene, 5)
        b = orbit_cameras(scene, 5)
        for ca, cb in zip(a, b):
            assert np.array_equal(ca.rotation, cb.rotation)
            assert np.array_equal(ca.translation, cb.translation)


class TestSplit:
    def test_every_nth_is_test(self, scene):
        cams = orbit_cameras(scene, 24)
        views = split_views(cams, scene.spec)
        # truck: every 8th image is a test view.
        assert views.test_indices == (0, 8, 16)

    def test_train_test_partition(self, scene):
        views = make_view_set(scene, 20)
        combined = sorted(views.train_indices + views.test_indices)
        assert combined == list(range(20))

    def test_test_cameras_accessor(self, scene):
        views = make_view_set(scene, 16)
        assert len(views.test_cameras) == len(views.test_indices)

    def test_mill19_convention(self):
        scene = load_scene("rubble", resolution_scale=0.05, num_gaussians=300)
        views = make_view_set(scene, 130)
        # rubble: every 64th image.
        assert views.test_indices == (0, 64, 128)

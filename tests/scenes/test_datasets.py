"""Unit tests for the Table II dataset registry."""

import pytest

from repro.scenes.datasets import (
    DATASETS,
    HARDWARE_SCENES,
    PROFILING_SCENES,
    SCENES,
    get_scene_spec,
)


class TestTable2Registry:
    def test_all_six_scenes_present(self):
        assert set(SCENES) == {
            "train", "truck", "drjohnson", "playroom", "rubble", "residence"
        }

    @pytest.mark.parametrize(
        "name,width,height",
        [
            ("train", 1959, 1090),
            ("truck", 1957, 1091),
            ("drjohnson", 1332, 876),
            ("playroom", 1264, 832),
            ("rubble", 4608, 3456),
            ("residence", 5472, 3648),
        ],
    )
    def test_resolutions_match_paper(self, name, width, height):
        spec = get_scene_spec(name)
        assert (spec.width, spec.height) == (width, height)

    @pytest.mark.parametrize(
        "name,scene_type",
        [
            ("train", "outdoor"),
            ("truck", "outdoor"),
            ("drjohnson", "indoor"),
            ("playroom", "indoor"),
            ("rubble", "outdoor"),
            ("residence", "outdoor"),
        ],
    )
    def test_types_match_paper(self, name, scene_type):
        assert get_scene_spec(name).scene_type == scene_type

    @pytest.mark.parametrize(
        "name,split",
        [("train", 8), ("drjohnson", 8), ("rubble", 64), ("residence", 128)],
    )
    def test_test_splits_match_paper(self, name, split):
        assert get_scene_spec(name).test_split_every == split

    def test_dataset_grouping(self):
        assert DATASETS["Tanks&Temples"] == ["train", "truck"]
        assert DATASETS["Deep Blending"] == ["drjohnson", "playroom"]
        assert DATASETS["Mill-19"] == ["rubble"]
        assert DATASETS["UrbanScene3D"] == ["residence"]

    def test_scene_tuples(self):
        assert PROFILING_SCENES == ("train", "truck", "drjohnson", "playroom")
        assert len(HARDWARE_SCENES) == 6

    def test_lookup_case_insensitive(self):
        assert get_scene_spec("Train").name == "train"

    def test_unknown_scene_rejected(self):
        with pytest.raises(KeyError):
            get_scene_spec("bonsai")

    def test_synthesis_parameters_sane(self):
        for spec in SCENES.values():
            assert spec.num_gaussians > 0
            assert spec.world_extent > 0
            assert spec.footprint_log_std_px > 0
            assert spec.footprint_cap_px > 8
            assert spec.opacity_a > 0 and spec.opacity_b > 0

"""Unit tests for synthetic scene generation."""

import numpy as np
import pytest

from repro.gaussians.projection import project
from repro.scenes.synthetic import load_scene
from repro.scenes.datasets import SCENES


class TestLoadScene:
    def test_deterministic(self):
        a = load_scene("playroom", resolution_scale=0.1, seed=3)
        b = load_scene("playroom", resolution_scale=0.1, seed=3)
        assert np.array_equal(a.cloud.positions, b.cloud.positions)
        assert np.array_equal(a.cloud.scales, b.cloud.scales)
        assert np.array_equal(a.cloud.opacities, b.cloud.opacities)

    def test_seed_changes_scene(self):
        a = load_scene("playroom", resolution_scale=0.1, seed=3)
        b = load_scene("playroom", resolution_scale=0.1, seed=4)
        assert not np.array_equal(a.cloud.positions, b.cloud.positions)

    def test_scenes_decorrelated(self):
        a = load_scene("drjohnson", resolution_scale=0.1, num_gaussians=500)
        b = load_scene("playroom", resolution_scale=0.1, num_gaussians=500)
        assert not np.array_equal(a.cloud.positions, b.cloud.positions)

    def test_resolution_scaling(self):
        scene = load_scene("train", resolution_scale=0.1)
        spec = SCENES["train"]
        assert scene.camera.width == round(spec.width * 0.1)
        assert scene.camera.height == round(spec.height * 0.1)

    def test_explicit_gaussian_count(self):
        scene = load_scene("truck", resolution_scale=0.1, num_gaussians=777)
        assert len(scene.cloud) == 777

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            load_scene("train", resolution_scale=0.0)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            load_scene("train", num_gaussians=-5)

    @pytest.mark.parametrize("name", sorted(SCENES))
    def test_every_scene_mostly_visible(self, name):
        """The synthetic camera must actually see the scene: a healthy
        fraction of Gaussians survives culling."""
        scene = load_scene(name, resolution_scale=0.08, num_gaussians=600)
        proj = project(scene.cloud, scene.camera)
        assert len(proj) > 0.3 * len(scene.cloud)

    def test_footprints_match_target_distribution(self):
        """Calibration property: the median projected 3-sigma radius is
        within a factor ~2 of the spec's log-normal median."""
        scene = load_scene("truck", resolution_scale=0.125, num_gaussians=3000)
        proj = project(scene.cloud, scene.camera)
        spec = SCENES["truck"]
        median = float(np.median(proj.radii))
        target = float(np.exp(spec.footprint_log_mean_px))
        assert target / 2.0 < median < target * 2.0

    def test_footprint_cap_respected_approximately(self):
        """Radii are capped at synthesis; projection adds only the blur
        and anisotropy jitter, so the largest projected radius stays in
        the same ballpark as the cap."""
        scene = load_scene("truck", resolution_scale=0.125, num_gaussians=3000)
        proj = project(scene.cloud, scene.camera)
        spec = SCENES["truck"]
        assert np.quantile(proj.radii, 0.99) < 2.0 * spec.footprint_cap_px

    def test_opacities_valid(self):
        scene = load_scene("rubble", resolution_scale=0.08, num_gaussians=500)
        assert np.all(scene.cloud.opacities >= 0.0)
        assert np.all(scene.cloud.opacities <= 1.0)

    def test_indoor_camera_inside_room(self):
        scene = load_scene("drjohnson", resolution_scale=0.1, num_gaussians=500)
        e = scene.spec.world_extent
        assert np.all(np.abs(scene.camera.position) < e)

"""Test package."""

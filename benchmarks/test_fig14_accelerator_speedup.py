"""Fig. 14: accelerator speedup over the baseline and GSCore.

Paper shape: GS-TG beats the baseline on every scene with a geometric
mean of 1.33x and a maximum of 1.58x on the high-resolution residence
scene, and outperforms GSCore by up to 1.54x.
"""

from benchmarks.conftest import run_once
from repro.experiments.hardware_eval import geomean, run_hardware_eval
from repro.scenes.datasets import HARDWARE_SCENES


def test_fig14_accelerator_speedup(benchmark, cache, emit):
    rows = run_once(benchmark, lambda: run_hardware_eval(cache))

    lines = ["Fig. 14: normalized accelerator speedup",
             f"{'scene':<12}{'baseline':>9}{'gscore':>9}{'gstg':>9}"]
    for r in rows:
        lines.append(
            f"{r.scene:<12}{1.0:>9.2f}{r.gscore_speedup:>9.2f}{r.gstg_speedup:>9.2f}"
        )
    gm = geomean([r.gstg_speedup for r in rows])
    mx = max(rows, key=lambda r: r.gstg_speedup)
    vs_gscore = max(r.gscore_ms / r.gstg_ms for r in rows)
    lines.append(
        f"geomean gstg speedup: {gm:.2f} (paper 1.33) | "
        f"max: {mx.gstg_speedup:.2f} on {mx.scene} (paper 1.58, residence) | "
        f"max vs GSCore: {vs_gscore:.2f} (paper 1.54)"
    )
    emit(*lines)

    # GS-TG never loses to the baseline.
    for r in rows:
        assert r.gstg_speedup >= 0.99
        # GS-TG never loses to GSCore either.
        assert r.gstg_ms <= r.gscore_ms * 1.001
    # Geomean in the paper's ballpark.
    assert 1.1 < gm < 1.6
    # The maximum gain comes from the highest-resolution scene.
    assert mx.scene == "residence"
    assert 1.3 < mx.gstg_speedup < 2.0


def test_fig14_scaling_with_resolution(benchmark, cache, emit):
    """Ablation: the speedup grows with scene resolution because pair
    traffic grows faster than pixel work."""
    rows = run_once(
        benchmark,
        lambda: run_hardware_eval(cache, scenes=("playroom", "residence")),
    )
    by_scene = {r.scene: r for r in rows}
    emit(
        "Fig. 14 ablation: resolution scaling",
        f"playroom  ({cache.scene('playroom').camera.width}px wide): "
        f"{by_scene['playroom'].gstg_speedup:.2f}x",
        f"residence ({cache.scene('residence').camera.width}px wide): "
        f"{by_scene['residence'].gstg_speedup:.2f}x",
    )
    assert by_scene["residence"].gstg_speedup > by_scene["playroom"].gstg_speedup

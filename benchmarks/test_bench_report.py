"""Acceptance floors for the PR's perf targets.

``benchmarks/test_engine_throughput.py``-style assertions over the
:mod:`benchmarks.bench_report` measurements: the vectorized hierarchical
render, the array-based pipeline-simulation sweep and the async serving
layer must each be at least 2x faster than their retained seed / naive
implementations.  A loaded shared CI runner can soften the floors via
the environment without weakening the local tier-1 gate.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.bench_report import (
    measure_admission_isolation,
    measure_cluster_throughput,
    measure_gateway_throughput,
    measure_hierarchical_render,
    measure_pipeline_sim_sweep,
    measure_serve_throughput,
    measure_trace_overhead,
)
from repro.scenes.synthetic import load_scene
from repro.scenes.trajectory import orbit_cameras

#: Required speedups over the seed implementations (acceptance: 2.0).
HIERARCHICAL_MIN_SPEEDUP = float(os.environ.get("HIERARCHICAL_MIN_SPEEDUP", "2.0"))
PIPELINE_SIM_MIN_SPEEDUP = float(os.environ.get("PIPELINE_SIM_MIN_SPEEDUP", "2.0"))
SERVE_MIN_SPEEDUP = float(os.environ.get("SERVE_MIN_SPEEDUP", "2.0"))
GATEWAY_MIN_SPEEDUP = float(os.environ.get("GATEWAY_MIN_SPEEDUP", "2.0"))
#: The cluster gate is 1.5 (not 2.0): it rides on cache affinity alone,
#: which must hold even on single-core runners where the three backend
#: processes cannot render in parallel.
CLUSTER_MIN_SPEEDUP = float(os.environ.get("CLUSTER_MIN_SPEEDUP", "1.5"))
#: Admission isolation: interactive p95 under a shed bulk storm may be
#: at most this multiple of its unloaded p95 (acceptance: 1.3; CI
#: softens via the environment on loaded shared runners).
ADMISSION_MAX_P95_RATIO = float(os.environ.get("ADMISSION_MAX_P95_RATIO", "1.3"))
#: Tracing-enabled serving may cost at most this multiple of untraced
#: (acceptance: 1.05 — within 5%; CI softens on loaded shared runners).
TRACE_MAX_OVERHEAD = float(os.environ.get("TRACE_MAX_OVERHEAD", "1.05"))

#: Concurrent clients / orbit views for the serving measurement.
SERVE_CLIENTS = 4
SERVE_VIEWS = 6

#: Resolution scales of the measurement workloads (the simulation sweep
#: needs enough work units per frame for per-unit costs to show).
RENDER_SCALE = 0.125
SIM_SCALE = 0.25
SIM_ROUNDS = 50


@pytest.fixture(scope="module")
def render_scene():
    return load_scene("playroom", resolution_scale=RENDER_SCALE, seed=0)


def test_hierarchical_render_speedup(emit, render_scene):
    seed_s, fast_s = measure_hierarchical_render(render_scene)
    speedup = seed_s / fast_s
    emit(
        "hierarchical render — "
        f"{render_scene.camera.width}x{render_scene.camera.height}",
        f"  reference: {seed_s:.3f}s   engine: {fast_s:.3f}s   "
        f"speedup: {speedup:.2f}x",
    )
    assert speedup >= HIERARCHICAL_MIN_SPEEDUP, (
        f"hierarchical fast path speedup {speedup:.2f}x below the "
        f"{HIERARCHICAL_MIN_SPEEDUP}x floor"
    )


def test_pipeline_sim_sweep_speedup(emit):
    scene = load_scene("playroom", resolution_scale=SIM_SCALE, seed=0)
    seed_s, fast_s = measure_pipeline_sim_sweep(scene, SIM_ROUNDS)
    speedup = seed_s / fast_s
    emit(
        f"pipeline-sim sweep — {scene.camera.width}x{scene.camera.height}, "
        f"{SIM_ROUNDS} rounds x 5 configurations",
        f"  per-unit loops: {seed_s:.3f}s   array path: {fast_s:.3f}s   "
        f"speedup: {speedup:.2f}x",
    )
    assert speedup >= PIPELINE_SIM_MIN_SPEEDUP, (
        f"pipeline-sim sweep speedup {speedup:.2f}x below the "
        f"{PIPELINE_SIM_MIN_SPEEDUP}x floor"
    )


def test_serve_throughput_speedup(emit, render_scene):
    """The acceptance floor for the serving layer: >= 2x over naive
    per-request rendering for overlapping concurrent trajectories."""
    cameras = orbit_cameras(render_scene, SERVE_VIEWS)
    seed_s, fast_s = measure_serve_throughput(
        render_scene, cameras, SERVE_CLIENTS
    )
    speedup = seed_s / fast_s
    emit(
        f"serve throughput — {SERVE_CLIENTS} clients x {SERVE_VIEWS} "
        f"overlapping views, "
        f"{render_scene.camera.width}x{render_scene.camera.height}",
        f"  naive per-request: {seed_s:.3f}s   service: {fast_s:.3f}s   "
        f"speedup: {speedup:.2f}x",
    )
    assert speedup >= SERVE_MIN_SPEEDUP, (
        f"serve throughput speedup {speedup:.2f}x below the "
        f"{SERVE_MIN_SPEEDUP}x floor"
    )


def test_gateway_throughput_speedup(emit, render_scene):
    """The tentpole acceptance floor: >= 2x over naive per-request
    rendering with every frame crossing a real localhost TCP socket."""
    cameras = orbit_cameras(render_scene, SERVE_VIEWS)
    seed_s, fast_s = measure_gateway_throughput(
        render_scene, cameras, SERVE_CLIENTS
    )
    speedup = seed_s / fast_s
    emit(
        f"gateway throughput — {SERVE_CLIENTS} TCP clients x {SERVE_VIEWS} "
        f"overlapping views, "
        f"{render_scene.camera.width}x{render_scene.camera.height}",
        f"  naive per-request: {seed_s:.3f}s   gateway: {fast_s:.3f}s   "
        f"speedup: {speedup:.2f}x",
    )
    assert speedup >= GATEWAY_MIN_SPEEDUP, (
        f"gateway throughput speedup {speedup:.2f}x below the "
        f"{GATEWAY_MIN_SPEEDUP}x floor"
    )


def test_admission_isolation(emit):
    """The admission-control acceptance gate: with per-class SLOs set,
    interactive p95 under an unbounded (10x-and-more) bulk storm stays
    within ``ADMISSION_MAX_P95_RATIO`` of its unloaded value, because
    the slow timescale sheds the bulk class outright."""
    metrics = measure_admission_isolation("playroom", RENDER_SCALE)
    emit(
        "admission isolation — 12 bulk workers vs 1 interactive probe, "
        "class-based shedding",
        f"  unloaded p95: {metrics['unloaded_p95_s'] * 1e3:.1f}ms   "
        f"class-blind under storm: "
        f"{metrics['baseline_loaded_p95_s'] * 1e3:.1f}ms   "
        f"shed (level {metrics['shed_level']}): "
        f"{metrics['isolated_p95_s'] * 1e3:.1f}ms   "
        f"ratio: {metrics['isolation_ratio']:.2f}x   "
        f"bulk offered/rejected: {metrics['bulk_streams_offered']}/"
        f"{metrics['bulk_rejected']}",
    )
    assert metrics["bit_identical"]
    assert metrics["shed_level"] == 2, (
        "the controller never escalated to shedding bulk "
        f"(level {metrics['shed_level']})"
    )
    assert metrics["bulk_rejected"] > 0  # the storm really was shed
    assert metrics["isolation_ratio"] <= ADMISSION_MAX_P95_RATIO, (
        f"interactive p95 degraded {metrics['isolation_ratio']:.2f}x under "
        f"the bulk storm (floor: {ADMISSION_MAX_P95_RATIO}x)"
    )


def test_cluster_throughput_speedup(emit):
    """The cluster acceptance floor: 1 router + 3 backend subprocesses
    must beat a single gateway by >= 1.5x on a steady-state multi-scene
    workload at fixed per-node cache capacity (see
    ``measure_cluster_throughput`` for exactly what is held equal)."""
    seed_s, fast_s = measure_cluster_throughput("playroom", RENDER_SCALE, SERVE_VIEWS)
    speedup = seed_s / fast_s
    emit(
        "cluster throughput — 3 scenes x 2 clients, 3 backends + router "
        "vs 1 gateway (steady state, per-node cache capacity fixed)",
        f"  single gateway: {seed_s:.3f}s   cluster: {fast_s:.3f}s   "
        f"speedup: {speedup:.2f}x",
    )
    assert speedup >= CLUSTER_MIN_SPEEDUP, (
        f"cluster throughput speedup {speedup:.2f}x below the "
        f"{CLUSTER_MIN_SPEEDUP}x floor"
    )


def test_trace_overhead(emit, render_scene):
    """The observability acceptance gate: serving the same workload
    with a live span-recording tracer costs at most
    ``TRACE_MAX_OVERHEAD``x the untraced wall time (acceptance: 1.05,
    i.e. within 5%; CI softens via the environment on loaded shared
    runners).  Correctness — identical served bytes either way — is
    asserted separately in ``tests/trace/``; this pins the *cost*."""
    cameras = orbit_cameras(render_scene, SERVE_VIEWS)
    untraced_s, traced_s = measure_trace_overhead(
        render_scene, cameras, SERVE_CLIENTS
    )
    ratio = traced_s / untraced_s
    emit(
        f"trace overhead — {SERVE_CLIENTS} clients x {SERVE_VIEWS} "
        "overlapping views, tracer on vs off",
        f"  untraced: {untraced_s:.3f}s   traced: {traced_s:.3f}s   "
        f"overhead: {ratio:.3f}x",
    )
    assert ratio <= TRACE_MAX_OVERHEAD, (
        f"tracing overhead {ratio:.3f}x above the "
        f"{TRACE_MAX_OVERHEAD}x ceiling"
    )

"""Table II: resolutions and types of the evaluated datasets.

This harness reproduces the registry (exact paper values) and times
scene synthesis for all six scenes at the benchmark scale.
"""

from benchmarks.conftest import BENCH_SCALE, run_once
from repro.scenes.datasets import HARDWARE_SCENES, SCENES


def test_table2_datasets(benchmark, cache, emit):
    scenes = run_once(
        benchmark, lambda: [cache.scene(name) for name in HARDWARE_SCENES]
    )

    lines = ["Table II: datasets",
             f"{'dataset':<16}{'scene':<12}{'resolution':<14}{'type':<9}{'sim res':<12}{'gaussians':>10}"]
    for scene in scenes:
        spec = scene.spec
        lines.append(
            f"{spec.dataset:<16}{spec.name:<12}"
            f"{f'{spec.width}x{spec.height}':<14}{spec.scene_type:<9}"
            f"{f'{scene.camera.width}x{scene.camera.height}':<12}"
            f"{len(scene.cloud):>10}"
        )
    lines.append(f"(simulated at resolution scale {BENCH_SCALE})")
    emit(*lines)

    paper = {
        "train": (1959, 1090, "outdoor"),
        "truck": (1957, 1091, "outdoor"),
        "drjohnson": (1332, 876, "indoor"),
        "playroom": (1264, 832, "indoor"),
        "rubble": (4608, 3456, "outdoor"),
        "residence": (5472, 3648, "outdoor"),
    }
    for name, (w, h, kind) in paper.items():
        spec = SCENES[name]
        assert (spec.width, spec.height, spec.scene_type) == (w, h, kind)

"""Fig. 3: GPU runtime breakdown across tile sizes (AABB and Ellipse).

Paper shape: preprocessing and sorting shrink as tiles grow; the
rasterization stage grows; the total is generally minimised at 16x16
(occasionally 32x32).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig03 import run_fig3
from repro.scenes.datasets import PROFILING_SCENES


def test_fig3_runtime_breakdown(benchmark, cache, emit):
    rows = run_once(benchmark, lambda: run_fig3(cache))

    lines = ["Fig. 3: GPU-model runtime breakdown (ms)",
             f"{'scene':<12}{'method':<9}{'tile':>5}{'pre':>8}{'sort':>8}{'raster':>9}{'total':>9}"]
    for r in rows:
        lines.append(
            f"{r.scene:<12}{r.method:<9}{r.tile_size:>5}"
            f"{r.preprocessing_ms:>8.3f}{r.sorting_ms:>8.3f}"
            f"{r.rasterization_ms:>9.3f}{r.total_ms:>9.3f}"
        )
    emit(*lines)

    for scene in PROFILING_SCENES:
        for method in ("aabb", "ellipse"):
            sub = [r for r in rows if r.scene == scene and r.method == method]
            sub.sort(key=lambda r: r.tile_size)
            pre = [r.preprocessing_ms for r in sub]
            sort = [r.sorting_ms for r in sub]
            raster = [r.rasterization_ms for r in sub]
            totals = {r.tile_size: r.total_ms for r in sub}
            # Monotone stage trends.
            assert all(a >= b for a, b in zip(pre, pre[1:]))
            assert all(a >= b for a, b in zip(sort, sort[1:]))
            assert all(a <= b for a, b in zip(raster, raster[1:]))
            # 16x16 or 32x32 is the fastest configuration (paper: "a tile
            # size of 16x16 provides the fastest rendering speed, though
            # in some cases 32x32 can also be faster").
            best = min(totals, key=totals.get)
            assert best in (16, 32)

"""Ablations on the accelerator's design choices (DESIGN.md section 4).

Three ablations the paper's architecture argues for:

1. **BGM || GSM overlap** (Section V-A): the dedicated hardware runs
   bitmask generation concurrently with group sorting; a SIMT GPU
   cannot.  Measured with the pipelined simulator.
2. **DRAM bandwidth sensitivity**: the baseline is traffic-bound, GS-TG
   compute-bound, so GS-TG's advantage grows as bandwidth shrinks.
3. **Shared-memory feature reuse**: GS-TG's per-group feature fetch vs
   the baseline's per-tile re-fetch is the dominant traffic term.
"""

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.core.grouping import GroupGeometry
from repro.hardware.config import GSTG_CONFIG
from repro.hardware.pipeline_sim import (
    simulate_baseline_pipelined,
    simulate_gstg_pipelined,
)
from repro.hardware.simulator import simulate_baseline, simulate_gstg
from repro.tiles.boundary import BoundaryMethod

#: Large scenes only: the pipelined model needs enough groups per core
#: (see repro.hardware.pipeline_sim granularity caveat).
ABLATION_SCENES = ("train", "rubble", "residence")


def _pipeline_rows(cache):
    rows = []
    for name in ABLATION_SCENES:
        scene = cache.scene(name)
        geometry = GroupGeometry(scene.camera.width, scene.camera.height, 16, 64)
        base = cache.baseline_render(name, 16, BoundaryMethod.ELLIPSE)
        ours = cache.gstg_render(
            name, 16, 64, BoundaryMethod.ELLIPSE, BoundaryMethod.ELLIPSE
        )
        rows.append(
            (
                name,
                simulate_baseline_pipelined(base),
                simulate_gstg_pipelined(ours, geometry, overlap_bitmask=True),
                simulate_gstg_pipelined(ours, geometry, overlap_bitmask=False),
            )
        )
    return rows


def test_ablation_bgm_gsm_overlap(benchmark, cache, emit):
    rows = run_once(benchmark, lambda: _pipeline_rows(cache))

    lines = ["Ablation: pipelined simulation, BGM||GSM overlap on vs off",
             f"{'scene':<12}{'baseline':>10}{'gstg':>10}{'gstg-seq':>10}{'speedup':>9}{'overlap+':>9}"]
    for name, base, overlapped, sequential in rows:
        lines.append(
            f"{name:<12}{base.cycles:>10,.0f}{overlapped.cycles:>10,.0f}"
            f"{sequential.cycles:>10,.0f}{base.cycles / overlapped.cycles:>9.2f}"
            f"{sequential.cycles / overlapped.cycles:>9.3f}"
        )
    emit(*lines)

    for name, base, overlapped, sequential in rows:
        # Overlap never loses, and GS-TG beats the baseline on the
        # large scenes even under the conservative pipelined model.
        assert overlapped.cycles <= sequential.cycles * 1.0001
        assert overlapped.cycles < base.cycles * 1.02


def test_ablation_dram_bandwidth(benchmark, cache, emit):
    """GS-TG's speedup grows as DRAM bandwidth shrinks (the baseline is
    traffic-bound; GS-TG is compute-bound)."""
    scene = cache.scene("train")
    w, h = scene.camera.width, scene.camera.height
    base = cache.baseline_render("train", 16, BoundaryMethod.ELLIPSE)
    ours = cache.gstg_render(
        "train", 16, 64, BoundaryMethod.ELLIPSE, BoundaryMethod.ELLIPSE
    )

    def sweep():
        results = []
        for factor in (0.5, 1.0, 2.0):
            config = replace(
                GSTG_CONFIG,
                dram_bandwidth_bytes_per_s=factor * 51.2e9,
            )
            b = simulate_baseline(base.stats, w, h, config)
            g = simulate_gstg(ours.stats, w, h, config)
            results.append((factor, b.cycles / g.cycles))
        return results

    results = run_once(benchmark, sweep)
    lines = ["Ablation: DRAM bandwidth sweep (train)",
             f"{'bandwidth':>12}{'gstg speedup':>14}"]
    for factor, speedup in results:
        lines.append(f"{51.2 * factor:>9.1f} GB/s{speedup:>14.2f}")
    emit(*lines)

    speedups = [s for _, s in results]
    assert speedups[0] >= speedups[1] >= speedups[2]
    assert speedups[0] > 1.5  # at half bandwidth the traffic gap widens


def test_ablation_feature_reuse_traffic(benchmark, cache, emit):
    """Per-group vs per-tile feature fetch is the dominant traffic
    difference (the Fig. 9/10 shared memory)."""
    scene = cache.scene("train")
    w, h = scene.camera.width, scene.camera.height
    base = cache.baseline_render("train", 16, BoundaryMethod.ELLIPSE)
    ours = cache.gstg_render(
        "train", 16, 64, BoundaryMethod.ELLIPSE, BoundaryMethod.ELLIPSE
    )

    def traffic():
        b = simulate_baseline(base.stats, w, h)
        g = simulate_gstg(ours.stats, w, h)
        return b.traffic, g.traffic

    base_traffic, gstg_traffic = run_once(benchmark, traffic)
    ratio = base_traffic.feature_fetch_bytes / gstg_traffic.feature_fetch_bytes
    emit(
        "Ablation: feature-fetch traffic (train)",
        f"baseline per-tile fetch: {base_traffic.feature_fetch_bytes / 1e6:8.2f} MB",
        f"gstg per-group fetch:    {gstg_traffic.feature_fetch_bytes / 1e6:8.2f} MB",
        f"reuse factor: {ratio:.2f}x (= avg tiles per Gaussian per group)",
        f"total traffic ratio: "
        f"{base_traffic.total_bytes / gstg_traffic.total_bytes:.2f}x",
    )
    assert ratio > 2.0
    assert base_traffic.total_bytes > gstg_traffic.total_bytes

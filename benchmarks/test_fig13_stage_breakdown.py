"""Fig. 13: stage-wise runtime breakdown, Train scene.

Paper shape: GS-TG's sorting time matches the 64x64 baseline (it sorts
at group granularity) while its rasterization matches the 16x16 baseline
(it rasterises at tile granularity); on a GPU its preprocessing exceeds
the baseline's because bitmask generation cannot overlap group sorting.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig13 import run_fig13


def test_fig13_stage_breakdown(benchmark, cache, emit):
    rows = run_once(benchmark, lambda: run_fig13(cache))
    by_config = {r.config: r for r in rows}

    lines = ["Fig. 13: Train stage breakdown, GPU model (ms)",
             f"{'config':<8}{'pre':>8}{'sort':>8}{'raster':>9}{'total':>9}"]
    for r in rows:
        lines.append(
            f"{r.config:<8}{r.preprocessing_ms:>8.3f}{r.sorting_ms:>8.3f}"
            f"{r.rasterization_ms:>9.3f}{r.total_ms:>9.3f}"
        )
    emit(*lines)

    ours = by_config["ours"]
    # Sorting performance comparable to the 64x64 baseline.
    assert ours.sorting_ms == pytest.approx(by_config["64x64"].sorting_ms, rel=0.3)
    # Rasterization equivalent to the 16x16 baseline.
    assert ours.rasterization_ms == pytest.approx(
        by_config["16x16"].rasterization_ms, rel=0.05
    )
    # GPU-sequential bitmask generation makes preprocessing slower than
    # the 16x16 baseline.
    assert ours.preprocessing_ms > by_config["16x16"].preprocessing_ms
    # The total still beats the 16x16 baseline.
    assert ours.total_ms < by_config["16x16"].total_ms

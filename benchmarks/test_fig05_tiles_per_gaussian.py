"""Fig. 5: average intersecting tiles per Gaussian vs tile size.

Paper shape: decreasing tile size increases tiles-per-Gaussian roughly
exponentially; at AABB the 8x8 / 64x64 ratio reaches 18.3x (playroom),
and ellipse ratios reach 7.09x.
"""

from benchmarks.conftest import run_once
from repro.experiments.profiling import run_profiling_sweep
from repro.scenes.datasets import PROFILING_SCENES
from repro.tiles.boundary import BoundaryMethod


def test_fig5_tiles_per_gaussian(benchmark, cache, emit):
    rows = run_once(benchmark, lambda: run_profiling_sweep(cache))

    lines = ["Fig. 5: avg intersecting tiles per Gaussian",
             f"{'scene':<12}{'method':<9}{'8x8':>8}{'16x16':>8}{'32x32':>8}{'64x64':>8}{'8/64':>7}"]
    for scene in PROFILING_SCENES:
        for method in ("aabb", "ellipse"):
            vals = {
                r.tile_size: r.tiles_per_gaussian
                for r in rows
                if r.scene == scene and r.method == method
            }
            ratio = vals[8] / vals[64]
            lines.append(
                f"{scene:<12}{method:<9}"
                + "".join(f"{vals[ts]:>8.2f}" for ts in (8, 16, 32, 64))
                + f"{ratio:>7.1f}"
            )
    lines.append("paper: AABB max ratio 18.3x (playroom); Ellipse max ratio 7.09x")
    emit(*lines)

    for scene in PROFILING_SCENES:
        for method in ("aabb", "ellipse"):
            vals = [
                r.tiles_per_gaussian
                for r in rows
                if r.scene == scene and r.method == method
            ]
            # Strictly decreasing in tile size (rows are ordered 8..64).
            assert all(a > b for a, b in zip(vals, vals[1:]))
            # Super-linear growth toward small tiles: the 8->64 ratio far
            # exceeds the 8x area ratio... at least 5x overall.
            assert vals[0] / vals[-1] > 5.0
            # Ellipse is always tighter than AABB at the same tile size.
    for scene in PROFILING_SCENES:
        for ts in (8, 16, 32, 64):
            aabb = next(
                r.tiles_per_gaussian for r in rows
                if r.scene == scene and r.method == "aabb" and r.tile_size == ts
            )
            ell = next(
                r.tiles_per_gaussian for r in rows
                if r.scene == scene and r.method == "ellipse" and r.tile_size == ts
            )
            assert ell <= aabb

"""Table I: percentage of Gaussians shared with adjacent tiles.

Paper values (AABB):
    scene       8x8   16x16  32x32  64x64
    train       94.4  89.0   79.7   66.0
    truck       89.0  79.2   64.7   47.7
    drjohnson   91.4  83.9   71.3   54.0
    playroom    91.3  83.8   71.7   54.7
    average     91.5  84.0   71.9   55.6
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.profiling import run_profiling_sweep
from repro.scenes.datasets import PROFILING_SCENES
from repro.tiles.boundary import BoundaryMethod

PAPER_AVERAGE = {8: 91.5, 16: 84.0, 32: 71.9, 64: 55.6}


def test_table1_shared_gaussians(benchmark, cache, emit):
    rows = run_once(
        benchmark,
        lambda: run_profiling_sweep(cache, methods=(BoundaryMethod.AABB,)),
    )

    by_scene = {}
    for r in rows:
        by_scene.setdefault(r.scene, {})[r.tile_size] = r.shared_percent

    lines = ["Table I: % Gaussians shared with adjacent tiles (AABB)",
             f"{'scene':<12}{'8x8':>8}{'16x16':>8}{'32x32':>8}{'64x64':>8}"]
    for scene in PROFILING_SCENES:
        vals = by_scene[scene]
        lines.append(
            f"{scene:<12}" + "".join(f"{vals[ts]:>8.1f}" for ts in (8, 16, 32, 64))
        )
    averages = {
        ts: float(np.mean([by_scene[s][ts] for s in PROFILING_SCENES]))
        for ts in (8, 16, 32, 64)
    }
    lines.append(
        f"{'average':<12}" + "".join(f"{averages[ts]:>8.1f}" for ts in (8, 16, 32, 64))
    )
    lines.append(
        f"{'paper avg':<12}"
        + "".join(f"{PAPER_AVERAGE[ts]:>8.1f}" for ts in (8, 16, 32, 64))
    )
    emit(*lines)

    # Shape assertions: monotone decrease with tile size, and the average
    # within a few points of the paper at every tile size.
    for scene in PROFILING_SCENES:
        vals = [by_scene[scene][ts] for ts in (8, 16, 32, 64)]
        assert vals[0] > vals[1] > vals[2] > vals[3]
    for ts, paper in PAPER_AVERAGE.items():
        assert abs(averages[ts] - paper) < 8.0

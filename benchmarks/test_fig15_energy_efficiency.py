"""Fig. 15: normalized energy efficiency.

Paper shape: GS-TG improves energy efficiency over the baseline on every
scene — geometric mean 2.12x, maximum 2.97x on residence — and the
efficiency gain exceeds the speedup because DRAM traffic shrinks faster
than runtime.
"""

from benchmarks.conftest import run_once
from repro.experiments.hardware_eval import geomean, run_hardware_eval


def test_fig15_energy_efficiency(benchmark, cache, emit):
    rows = run_once(benchmark, lambda: run_hardware_eval(cache))

    lines = ["Fig. 15: normalized energy efficiency",
             f"{'scene':<12}{'baseline':>9}{'gscore':>9}{'gstg':>9}{'gstg uJ':>10}"]
    for r in rows:
        lines.append(
            f"{r.scene:<12}{1.0:>9.2f}{r.gscore_efficiency:>9.2f}"
            f"{r.gstg_efficiency:>9.2f}{r.gstg_uj:>10.2f}"
        )
    gm = geomean([r.gstg_efficiency for r in rows])
    mx = max(rows, key=lambda r: r.gstg_efficiency)
    lines.append(
        f"geomean gstg efficiency: {gm:.2f} (paper 2.12) | "
        f"max: {mx.gstg_efficiency:.2f} on {mx.scene} (paper 2.97, residence)"
    )
    emit(*lines)

    for r in rows:
        # GS-TG is more energy-efficient than the baseline everywhere.
        assert r.gstg_efficiency > 1.0
        # Efficiency gain exceeds the speedup (the DRAM-energy effect).
        assert r.gstg_efficiency > r.gstg_speedup
    assert 1.4 < gm < 2.6
    # The maximum gain comes from the highest-resolution scene.
    assert mx.scene == "residence"

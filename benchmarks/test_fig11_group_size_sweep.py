"""Fig. 11: GS-TG speedup across tile+group combinations.

Paper shape: 16+64 is the best design point in most cases (16+32 can tie
within noise); tile-8 combinations underperform because of much wider
bitmasks and heavier per-tile work.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig11 import FIG11_COMBOS, run_fig11
from repro.scenes.datasets import PROFILING_SCENES


def test_fig11_group_size_sweep(benchmark, cache, emit):
    rows = run_once(benchmark, lambda: run_fig11(cache))

    lines = ["Fig. 11: GS-TG speedup vs 16x16 baseline (ellipse)",
             f"{'scene':<12}" + "".join(f"{t}+{g:>3}".rjust(9) for t, g in FIG11_COMBOS)]
    for scene in PROFILING_SCENES:
        vals = [r.speedup for r in rows if r.scene == scene]
        lines.append(f"{scene:<12}" + "".join(f"{v:>9.3f}" for v in vals))
    lines.append("paper: 16+64 fastest in most cases")
    emit(*lines)

    wins_16_64 = 0
    for scene in PROFILING_SCENES:
        by_label = {r.label: r.speedup for r in rows if r.scene == scene}
        best = max(by_label, key=by_label.get)
        # Tile-16 combos always beat tile-8 combos.
        assert min(by_label["16+32"], by_label["16+64"]) > max(
            by_label["8+16"], by_label["8+32"], by_label["8+64"]
        )
        if best == "16+64":
            wins_16_64 += 1
        else:
            # When 16+64 is not the winner it must be a near-tie.
            assert by_label["16+64"] > 0.97 * by_label[best]
    assert wins_16_64 >= len(PROFILING_SCENES) // 2

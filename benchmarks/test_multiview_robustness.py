"""Multi-view robustness of the Fig. 14 result.

The paper evaluates over each scene's held-out test views; this harness
orbits the playroom scene, applies the every-8th test split and checks
that GS-TG stays lossless and at least baseline-fast on *every* view —
the speedup is a workload property, not a camera-pose accident.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.multiview import run_multiview


def test_multiview_robustness(benchmark, emit):
    rows = run_once(
        benchmark,
        lambda: run_multiview("playroom", num_views=24, resolution_scale=0.1),
    )

    lines = ["Multi-view robustness (playroom, every-8th test split)",
             f"{'view':>5}{'baseline ms':>12}{'gstg ms':>9}{'speedup':>9}{'lossless':>10}"]
    for r in rows:
        lines.append(
            f"{r.view_index:>5}{r.baseline_ms:>12.4f}{r.gstg_ms:>9.4f}"
            f"{r.speedup:>9.2f}{str(r.lossless):>10}"
        )
    speedups = [r.speedup for r in rows]
    lines.append(
        f"mean speedup {np.mean(speedups):.2f}, min {min(speedups):.2f}, "
        f"max {max(speedups):.2f}"
    )
    emit(*lines)

    assert len(rows) == 3  # 24 views, every 8th
    for r in rows:
        assert r.lossless
        assert r.speedup >= 0.99

"""Shared infrastructure for the per-figure benchmark harnesses.

Every harness regenerates one table or figure of the paper from the
functional simulator and prints it in the paper's layout (live, past
pytest's capture), then asserts the paper's qualitative shape.  A single
session-wide render cache keeps each configuration to one render.
"""

from __future__ import annotations

import pytest

from repro.experiments.cache import RenderCache

#: Resolution scale used by every benchmark harness.  Matches the scale
#: the EXPERIMENTS.md numbers were recorded at.
BENCH_SCALE = 0.125


@pytest.fixture(scope="session")
def cache() -> RenderCache:
    """One render cache shared by all benchmark harnesses."""
    return RenderCache(resolution_scale=BENCH_SCALE, seed=0)


@pytest.fixture
def emit(capsys):
    """Print lines live, bypassing pytest's output capture."""

    def _emit(*lines: str) -> None:
        with capsys.disabled():
            print()
            for line in lines:
                print(line)

    return _emit


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The harnesses time full experiment regenerations; repeating them for
    statistical rounds would multiply minutes of runtime for no insight.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)

"""Fig. 7: average Gaussians that must be processed per pixel.

Paper shape: grows with tile size for every scene and boundary; the
64x64 / 8x8 ratio reaches 10.6x (truck, ellipse) and 4.79x (AABB).
"""

from benchmarks.conftest import run_once
from repro.experiments.profiling import run_profiling_sweep
from repro.scenes.datasets import PROFILING_SCENES


def test_fig7_gaussians_per_pixel(benchmark, cache, emit):
    rows = run_once(benchmark, lambda: run_profiling_sweep(cache))

    lines = ["Fig. 7: avg Gaussians processed per pixel",
             f"{'scene':<12}{'method':<9}{'8x8':>8}{'16x16':>8}{'32x32':>8}{'64x64':>8}{'64/8':>7}"]
    for scene in PROFILING_SCENES:
        for method in ("aabb", "ellipse"):
            vals = {
                r.tile_size: r.gaussians_per_pixel
                for r in rows
                if r.scene == scene and r.method == method
            }
            lines.append(
                f"{scene:<12}{method:<9}"
                + "".join(f"{vals[ts]:>8.1f}" for ts in (8, 16, 32, 64))
                + f"{vals[64] / vals[8]:>7.1f}"
            )
    lines.append("paper: max ratio 10.6x (truck, ellipse); 4.79x (AABB)")
    emit(*lines)

    for scene in PROFILING_SCENES:
        for method in ("aabb", "ellipse"):
            vals = [
                r.gaussians_per_pixel
                for r in rows
                if r.scene == scene and r.method == method
            ]
            # Increasing with tile size.
            assert all(a < b for a, b in zip(vals, vals[1:]))
            # Meaningful growth: at least 2x from 8 to 64.
            assert vals[-1] / vals[0] > 2.0

"""Fig. 2: tiles intersected by one Gaussian under AABB / OBB / Ellipse.

The paper's illustrative example: a tilted anisotropic Gaussian
intersects 16 tiles under AABB, 8 under OBB and 4 under the exact
ellipse test.  The reproduction builds such a Gaussian and reports the
three counts; the required shape is the strict ordering and the
aggregate tightness across a whole scene.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.gaussians.cloud import GaussianCloud
from repro.gaussians.camera import Camera
from repro.gaussians.projection import project
from repro.tiles.boundary import BoundaryMethod
from repro.tiles.grid import TileGrid
from repro.tiles.identify import identify_tiles


def _tilted_gaussian(camera):
    """A long thin Gaussian rotated 45 degrees, like Fig. 2's example."""
    c, s = np.cos(np.pi / 8), np.sin(np.pi / 8)
    cloud = GaussianCloud(
        positions=np.array([[0.0, 0.0, 5.0]]),
        scales=np.array([[0.6, 0.2, 0.2]]),
        rotations=np.array([[c, 0.0, 0.0, s]]),
        opacities=np.array([0.9]),
        sh_coeffs=np.zeros((1, 1, 3)),
    )
    return project(cloud, camera)


def test_fig2_boundary_comparison(benchmark, cache, emit):
    camera = Camera(width=192, height=192, fx=160.0, fy=160.0)
    grid = TileGrid(camera.width, camera.height, 16)
    proj = _tilted_gaussian(camera)

    def counts():
        return {
            method: identify_tiles(proj, grid, method).num_pairs
            for method in BoundaryMethod
        }

    single = run_once(benchmark, counts)

    # Aggregate tightness over a full scene.
    scene_pairs = {
        method: cache.assignment("truck", 16, method).num_pairs
        for method in BoundaryMethod
    }

    lines = ["Fig. 2: tiles intersected by a tilted anisotropic Gaussian",
             f"{'method':<9}{'single Gaussian':>16}{'truck scene pairs':>19}"]
    for method in BoundaryMethod:
        lines.append(
            f"{method.value:<9}{single[method]:>16}{scene_pairs[method]:>19}"
        )
    lines.append("paper example: AABB 16, OBB 8, Ellipse 4")
    emit(*lines)

    # Strict tightening for the tilted example, like the paper's figure.
    assert single[BoundaryMethod.AABB] > single[BoundaryMethod.OBB]
    assert single[BoundaryMethod.OBB] > single[BoundaryMethod.ELLIPSE]
    # Aggregate ordering over a real scene (OBB/ellipse cannot exceed
    # their containing shapes in total).
    assert (
        scene_pairs[BoundaryMethod.ELLIPSE]
        <= scene_pairs[BoundaryMethod.OBB]
        <= scene_pairs[BoundaryMethod.AABB]
    )

"""Performance trajectory report: time the sweep-critical paths.

Measures the hot paths this repo's performance work targets —
the batch-engine trajectory, the vectorized hierarchical render, the
array-based pipeline-simulation sweep, the async serving layer under
concurrent overlapping load, the network gateway serving the same
load over real localhost TCP sockets, the sharded cluster (one
router + three backend subprocesses) against a single gateway on a
multi-scene workload, and the class-based admission controller's
latency isolation (interactive p95 held near its unloaded value while
an unbounded bulk storm is shed) — each against its retained seed
(naive / pure-Python / single-node / class-blind) implementation, and
records the results in ``BENCH_core.json`` (every metric is
documented in ``docs/benchmarks.md``)::

    {"meta": {...workload...},
     "entries": [{"name": ..., "wall_s": ..., "speedup_vs_seed": ...}]}

``wall_s`` is the fast path's wall time; ``speedup_vs_seed`` divides the
seed path's time by it.  The JSON lives in the repository so future PRs
can diff the perf trajectory; CI re-runs this script on a tiny scene as
a smoke check (absolute numbers are machine-dependent — the committed
file documents one reference machine).

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py \
        [--scene playroom] [--scale 0.125] [--views 6] [--workers 2] \
        [--clients 4] [--sim-rounds 30] [--sim-scale 0.25] \
        [--out BENCH_core.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time

import numpy as np

from repro.cluster import ClusterMap, LocalFleet, ShardRouter
from repro.core.grouping import GroupGeometry
from repro.core.hierarchical import HierarchicalGSTGRenderer
from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.hardware.pipeline_sim import (
    simulate_baseline_pipelined,
    simulate_gstg_pipelined,
)
from repro.raster.renderer import BaselineRenderer
from repro.scenes.synthetic import load_scene
from repro.scenes.trajectory import orbit_cameras
from repro.serve import (
    AdmissionController,
    AsyncGatewayClient,
    GatewayError,
    RenderGateway,
    RenderService,
    SharedRenderCache,
    naive_render_seconds,
    run_clients,
)
from repro.serve.protocol import ErrorCode
from repro.tiles.boundary import BoundaryMethod

#: Timing rounds per measurement; the minimum wall time is reported
#: (the least-interrupted run is the true cost).
ROUNDS = 2


def best_of(func, rounds: int = ROUNDS) -> float:
    """Minimum wall seconds of ``func`` over ``rounds`` runs."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def measure_engine_trajectory(scene, cameras, workers: int) -> "tuple[float, float]":
    """(seed_s, fast_s): sequential per-tile renders vs the batch engine."""
    renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
    engine = RenderEngine(renderer)
    # Warm both paths (first-call allocations, forked-worker imports).
    renderer.render(scene.cloud, cameras[0])
    engine.render_trajectory(scene.cloud, cameras[:2], workers=workers)
    seed_s = best_of(
        lambda: [renderer.render(scene.cloud, camera) for camera in cameras]
    )
    fast_s = best_of(
        lambda: engine.render_trajectory(scene.cloud, cameras, workers=workers)
    )
    return seed_s, fast_s


def measure_hierarchical_render(scene) -> "tuple[float, float]":
    """(seed_s, fast_s): reference two-level render vs the engine path."""
    renderer = HierarchicalGSTGRenderer(16, 64, 128, BoundaryMethod.ELLIPSE)
    engine = RenderEngine(renderer)
    engine.render(scene.cloud, scene.camera)  # warm
    seed_s = best_of(lambda: renderer.render(scene.cloud, scene.camera))
    fast_s = best_of(lambda: engine.render(scene.cloud, scene.camera))
    return seed_s, fast_s


def measure_pipeline_sim_sweep(scene, rounds: int) -> "tuple[float, float]":
    """(seed_s, fast_s): the fig13–fig15/ablation-style simulation sweep
    with per-unit Python loops vs the array-based builders."""
    camera = scene.camera
    geometry = GroupGeometry(camera.width, camera.height, 16, 64)
    base = RenderEngine(BaselineRenderer(16, BoundaryMethod.ELLIPSE)).render(
        scene.cloud, camera
    )
    ours = RenderEngine(GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)).render(
        scene.cloud, camera
    )

    def sweep(vectorized: bool) -> None:
        for _ in range(rounds):
            simulate_baseline_pipelined(base, vectorized=vectorized)
            for overlap in (True, False):
                for ru_per_tile in (True, False):
                    simulate_gstg_pipelined(
                        ours,
                        geometry,
                        overlap_bitmask=overlap,
                        ru_per_tile=ru_per_tile,
                        vectorized=vectorized,
                    )

    sweep(True)  # warm
    seed_s = best_of(lambda: sweep(False))
    fast_s = best_of(lambda: sweep(True))
    return seed_s, fast_s


def measure_serve_throughput(
    scene, cameras, clients: int
) -> "tuple[float, float]":
    """(seed_s, fast_s): naive per-request rendering vs the async render
    service (micro-batching + in-flight dedup + shared render cache) for
    ``clients`` concurrent clients streaming the same trajectory.

    Each timed service run starts from a *fresh* render cache — the
    measured speedup is the steady-state serving win (coalescing and
    exactly-once rendering), not a warm-cache replay.
    """
    renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
    trajectories = [list(cameras) for _ in range(clients)]

    def run_service() -> None:
        async def drive() -> None:
            with SharedRenderCache() as cache:
                async with RenderService(
                    renderer, cache=cache, max_batch_size=8, max_wait=0.002
                ) as service:
                    report = await run_clients(service, scene.cloud, trajectories)
                    assert report.service["engine_renders"] < report.frames

        asyncio.run(drive())

    run_service()  # warm (first-call allocations, executor spin-up)
    seed_s = best_of(
        lambda: naive_render_seconds(renderer, scene.cloud, trajectories)
    )
    fast_s = best_of(run_service)
    return seed_s, fast_s


def measure_gateway_throughput(
    scene, cameras, clients: int
) -> "tuple[float, float]":
    """(seed_s, fast_s): naive per-request rendering vs the *network*
    gateway — ``clients`` concurrent connections each streaming the same
    trajectory over a real localhost TCP socket.

    Everything the in-process ``serve_throughput`` measurement pays for
    plus the full wire cost: protocol framing, scene push, image bytes
    over loopback, client-side decoding.  Like ``serve_throughput``,
    each timed run starts from a fresh render cache.
    """
    renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
    trajectories = [list(cameras) for _ in range(clients)]

    def run_gateway() -> None:
        async def drive() -> None:
            with SharedRenderCache() as cache:
                async with RenderService(
                    renderer, cache=cache, max_batch_size=8, max_wait=0.002
                ) as service:
                    gateway = RenderGateway(service)
                    await gateway.start()
                    connections = [
                        await AsyncGatewayClient.connect(
                            "127.0.0.1", gateway.tcp_port
                        )
                        for _ in range(clients)
                    ]
                    try:
                        report = await run_clients(
                            connections, scene.cloud, trajectories
                        )
                        assert report.service["engine_renders"] < report.frames
                    finally:
                        for connection in connections:
                            await connection.close()
                        await gateway.close()

        asyncio.run(drive())

    run_gateway()  # warm
    seed_s = best_of(
        lambda: naive_render_seconds(renderer, scene.cloud, trajectories)
    )
    fast_s = best_of(run_gateway)
    return seed_s, fast_s


async def _timed_client_rounds(
    host: str,
    port: int,
    scenes,
    orbits,
    clients_per_scene: int,
    rounds: int,
) -> float:
    """Best wall seconds for one full concurrent multi-scene client load.

    Each client streams its scene's whole orbit once per round; the
    first (untimed) round warms worker pools and render caches, so the
    timed rounds measure *steady-state* serving — the regime a
    long-running deployment lives in.
    """

    async def one_client(scene, orbit) -> None:
        client = await AsyncGatewayClient.connect(host, port)
        try:
            async for _ in client.stream_trajectory(scene.cloud, orbit):
                pass
        finally:
            await client.close()

    async def one_round() -> None:
        await asyncio.gather(
            *(
                one_client(scene, orbit)
                for scene, orbit in zip(scenes, orbits)
                for _ in range(clients_per_scene)
            )
        )

    await one_round()  # warm
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        await one_round()
        best = min(best, time.perf_counter() - start)
    return best


def measure_cluster_throughput(
    scene_name: str,
    scale: float,
    views: int,
    *,
    num_scenes: int = 3,
    clients_per_scene: int = 2,
    backends: int = 3,
    replication: int = 2,
    rounds: int = ROUNDS,
) -> "tuple[float, float]":
    """(seed_s, fast_s): a single gateway vs the sharded cluster —
    1 router + ``backends`` backend subprocesses — on a multi-scene
    workload, **at fixed per-node resources**.

    Every backend (including the lone one in the baseline) runs with a
    render cache bounded to one scene's working set (``views`` frames),
    the per-node memory budget that forces the scaling question.  The
    single gateway serves all ``num_scenes`` scenes through that one
    bounded cache, so steady-state rounds keep evicting and
    re-rendering; the router's rendezvous sharding gives each scene a
    home backend whose cache holds it entirely, so steady-state rounds
    serve from shared memory.  On multicore hosts the cluster
    additionally renders misses in true parallel (the backends are
    separate processes); the recorded gate does not depend on that.

    Scenes are ``scene_name`` at ``num_scenes`` different seeds —
    equal-sized, content-distinct clouds, pushed over the wire by the
    clients themselves.
    """
    scenes = [
        load_scene(scene_name, resolution_scale=scale, seed=seed)
        for seed in range(num_scenes)
    ]
    orbits = [list(orbit_cameras(scene, views)) for scene in scenes]

    def single_gateway_seconds() -> float:
        with LocalFleet(1, cache_frames=views) as fleet:
            spec = fleet.specs[0]
            return asyncio.run(
                _timed_client_rounds(
                    spec.host, spec.port, scenes, orbits,
                    clients_per_scene, rounds,
                )
            )

    def cluster_seconds() -> float:
        with LocalFleet(backends, cache_frames=views) as fleet:
            async def drive() -> float:
                cluster_map = ClusterMap(fleet.specs, replication=replication)
                router = ShardRouter(cluster_map)
                await router.start()
                try:
                    best = await _timed_client_rounds(
                        router.host, router.tcp_port, scenes, orbits,
                        clients_per_scene, rounds,
                    )
                    if router.stats.failovers:
                        # Not an assert: must also hold under python -O.
                        raise RuntimeError(
                            "cluster benchmark invalid: "
                            f"{router.stats.failovers} failover(s) mid-run "
                            "mean the fleet was unhealthy"
                        )
                    return best
                finally:
                    await router.close()

            return asyncio.run(drive())

    return single_gateway_seconds(), cluster_seconds()


def measure_trace_overhead(
    scene, cameras, clients: int, *, rounds: int = 5
) -> "tuple[float, float]":
    """(untraced_s, traced_s): the serving stack with tracing off vs a
    live span-recording :class:`repro.trace.Tracer`.

    The same workload as :func:`measure_serve_throughput`'s fast path —
    ``clients`` concurrent in-process streams over a fresh render cache
    — run both ways, min-of-``rounds`` each.  The gate is a *ratio*
    close to 1.0: span recording sits on the request path (queue /
    cache / batch / render / stream spans per frame) and must stay in
    the noise next to real render work.  Tracing off must be free by
    construction (one branch per would-be span); that is asserted by
    byte-identity tests, while this measures the *enabled* cost.
    """
    from repro.trace import Tracer

    renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
    trajectories = [list(cameras) for _ in range(clients)]

    def run_service(tracer) -> None:
        async def drive() -> None:
            with SharedRenderCache() as cache:
                async with RenderService(
                    renderer, cache=cache, max_batch_size=8, max_wait=0.002,
                    tracer=tracer,
                ) as service:
                    await run_clients(service, scene.cloud, trajectories)

        asyncio.run(drive())

    run_service(None)  # warm (first-call allocations, executor spin-up)
    # Interleave the two variants round by round: the per-round noise
    # on this workload (~10-20%) dwarfs the tracing cost under test,
    # and back-to-back blocks would fold machine drift into the ratio.
    untraced_s = traced_s = float("inf")
    for _ in range(rounds):
        untraced_s = min(untraced_s, best_of(lambda: run_service(None), 1))
        traced_s = min(
            traced_s,
            best_of(
                lambda: run_service(Tracer(node="bench", capacity=65536)), 1
            ),
        )
    return untraced_s, traced_s


def measure_admission_isolation(
    scene_name: str,
    scale: float,
    *,
    capacity: int = 8,
    window: int = 16,
    bulk_workers: int = 12,
    bulk_views: int = 4,
    probes_unloaded: int = 32,
    probes_baseline: int = 24,
    probes_loaded: int = 48,
    think_s: float = 0.015,
    warmup_deadline_s: float = 30.0,
) -> dict:
    """Interactive p95 isolation under a 10x-and-more bulk storm.

    One gateway with a class-aware :class:`AdmissionController`, no
    render cache (every admitted request is a real render), and two
    content-distinct scenes so interactive probes and bulk load never
    share a micro-batch.  Three phases on the same live gateway:

    1. **Unloaded** — a lone interactive client measures its baseline
       p95 (think time between probes; nothing else running).
    2. **Storm, no SLO** — ``bulk_workers`` impolite clients hammer
       bulk streams as fast as admission lets them (on a 429 they only
       honor the ``retry_after_ms`` hint up to 50 ms); the probe's p95
       under this load is what a class-blind gateway delivers.
    3. **Storm, SLO set** — the interactive target is set just above
       the unloaded p95; the slow timescale observes the violation,
       sheds bulk (and prefetch) outright, and the probe's p95 is
       measured again.

    The recorded ``isolation_ratio`` (phase 3 / phase 1) is the gated
    metric: class-based shedding must hold interactive latency within a
    small factor of its unloaded value *while bulk offered load is
    unbounded*.  ``speedup_vs_seed`` is phase 2 / phase 3 — what the
    controller buys over the seed's class-blind admission.  Probe
    frames are checked bit-identical to direct engine renders.
    """
    interactive_scene = load_scene(scene_name, resolution_scale=scale, seed=0)
    bulk_scene = load_scene(scene_name, resolution_scale=scale, seed=1)
    interactive_cams = list(orbit_cameras(interactive_scene, 4))
    bulk_cams = list(orbit_cameras(bulk_scene, bulk_views))
    renderer = GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)
    engine = RenderEngine(renderer)
    reference = engine.render(interactive_scene.cloud, interactive_cams[0])

    async def drive() -> dict:
        admission = AdmissionController(capacity, window=window)
        async with RenderService(
            renderer, max_batch_size=8, max_wait=0.002
        ) as service:
            gateway = RenderGateway(service, admission=admission)
            await gateway.start()
            probe = None
            workers: "list[asyncio.Task]" = []
            stop = asyncio.Event()
            offered = {"streams": 0, "rejected": 0}
            try:
                probe = await AsyncGatewayClient.connect(
                    "127.0.0.1", gateway.tcp_port
                )

                async def probe_once(index: int):
                    camera = interactive_cams[index % len(interactive_cams)]
                    start = time.perf_counter()
                    result = await probe.render_frame(
                        interactive_scene.cloud,
                        camera,
                        request_class="interactive",
                    )
                    return time.perf_counter() - start, result

                async def probe_p95(count: int) -> float:
                    latencies = []
                    for index in range(count):
                        latency, _ = await probe_once(index)
                        latencies.append(latency)
                        await asyncio.sleep(think_s)
                    return float(np.percentile(latencies, 95.0))

                async def bulk_worker() -> None:
                    client = await AsyncGatewayClient.connect(
                        "127.0.0.1", gateway.tcp_port
                    )
                    try:
                        while not stop.is_set():
                            offered["streams"] += 1
                            try:
                                async for _ in client.stream_trajectory(
                                    bulk_scene.cloud, bulk_cams
                                ):
                                    if stop.is_set():
                                        break
                            except GatewayError as exc:
                                if exc.code != int(ErrorCode.REJECTED):
                                    raise
                                offered["rejected"] += 1
                                hint = (exc.retry_after_ms or 25) / 1000.0
                                await asyncio.sleep(min(hint, 0.05))
                    except asyncio.CancelledError:
                        pass
                    finally:
                        await client.close()

                # Phase 0: warm the serving path, and pin bit-identity.
                # Not asserts: must also hold under python -O.
                _, first = await probe_once(0)
                if not np.array_equal(first.image, reference.image):
                    raise RuntimeError(
                        "admission benchmark invalid: served frame "
                        "differs from the direct engine render"
                    )

                # Phase 1: unloaded baseline.
                unloaded_p95 = await probe_p95(probes_unloaded)

                # Phase 2: the storm, with class-blind admission (no SLO).
                workers = [
                    asyncio.ensure_future(bulk_worker())
                    for _ in range(bulk_workers)
                ]
                baseline_p95 = await probe_p95(probes_baseline)

                # Phase 3: arm the SLO; wait for the slow timescale to
                # observe the violation and shed, then measure isolation.
                admission.set_target(
                    "interactive", max(unloaded_p95 * 1.15, 0.002)
                )
                deadline = time.perf_counter() + warmup_deadline_s
                index = 0
                while (
                    admission.shed_level < 2
                    and time.perf_counter() < deadline
                ):
                    await probe_once(index)
                    index += 1
                    await asyncio.sleep(think_s)
                shed_level = admission.shed_level
                loaded_p95 = await probe_p95(probes_loaded)

                # One more bit-identity check while shedding is active.
                _, last = await probe_once(0)
                if not np.array_equal(last.image, reference.image):
                    raise RuntimeError(
                        "admission benchmark invalid: served frame "
                        "differs from the direct engine render"
                    )
            finally:
                stop.set()
                for worker in workers:
                    worker.cancel()
                if workers:
                    await asyncio.gather(*workers, return_exceptions=True)
                if probe is not None:
                    await probe.close()
                await gateway.close()
            return {
                "unloaded_p95_s": unloaded_p95,
                "baseline_loaded_p95_s": baseline_p95,
                "isolated_p95_s": loaded_p95,
                "isolation_ratio": loaded_p95 / unloaded_p95,
                "shed_level": shed_level,
                "bulk_streams_offered": offered["streams"],
                "bulk_rejected": offered["rejected"],
                "bit_identical": True,  # asserted above, both phases
            }

    return asyncio.run(drive())


def build_report(
    scene_name: str,
    scale: float,
    views: int,
    workers: int,
    sim_rounds: int,
    sim_scale: "float | None" = None,
    clients: int = 4,
) -> dict:
    """Run every measurement and shape the BENCH_core.json payload.

    The simulation sweep gets its own resolution scale (default:
    ``scale * 2``, matching the CLI): per-unit costs only show once the
    frame has enough work units, while the render measurements are
    already expensive at the base scale.
    """
    scene = load_scene(scene_name, resolution_scale=scale, seed=0)
    cameras = orbit_cameras(scene, views)
    if sim_scale is None:
        sim_scale = scale * 2
    sim_scene = (
        scene
        if sim_scale == scale
        else load_scene(scene_name, resolution_scale=sim_scale, seed=0)
    )

    entries = []
    for name, (seed_s, fast_s) in (
        ("engine_trajectory", measure_engine_trajectory(scene, cameras, workers)),
        ("hierarchical_render", measure_hierarchical_render(scene)),
        ("pipeline_sim_sweep", measure_pipeline_sim_sweep(sim_scene, sim_rounds)),
        ("serve_throughput", measure_serve_throughput(scene, cameras, clients)),
        (
            "gateway_throughput",
            measure_gateway_throughput(scene, cameras, clients),
        ),
        (
            "cluster_throughput",
            measure_cluster_throughput(scene_name, scale, views),
        ),
    ):
        entries.append(
            {
                "name": name,
                "wall_s": round(fast_s, 4),
                "speedup_vs_seed": round(seed_s / fast_s, 2),
            }
        )
    isolation = measure_admission_isolation(scene_name, scale)
    entries.append(
        {
            "name": "admission_isolation",
            # wall_s: interactive p95 under the shed bulk storm;
            # speedup_vs_seed: vs the class-blind gateway under the
            # same storm.  The gated metric is isolation_ratio
            # (loaded p95 / unloaded p95; acceptance <= 1.3).
            "wall_s": round(isolation["isolated_p95_s"], 4),
            "speedup_vs_seed": round(
                isolation["baseline_loaded_p95_s"]
                / isolation["isolated_p95_s"],
                2,
            ),
            "isolation_ratio": round(isolation["isolation_ratio"], 3),
            "unloaded_p95_s": round(isolation["unloaded_p95_s"], 4),
            "shed_level": isolation["shed_level"],
            "bulk_streams_offered": isolation["bulk_streams_offered"],
            "bulk_rejected": isolation["bulk_rejected"],
        }
    )
    untraced_s, traced_s = measure_trace_overhead(scene, cameras, clients)
    entries.append(
        {
            "name": "trace_overhead",
            # wall_s: traced serving wall time; speedup_vs_seed: the
            # untraced/traced ratio (>= 1.0 means tracing is free).
            # The gated metric is overhead_ratio (acceptance <= 1.05).
            "wall_s": round(traced_s, 4),
            "speedup_vs_seed": round(untraced_s / traced_s, 2),
            "overhead_ratio": round(traced_s / untraced_s, 3),
            "untraced_wall_s": round(untraced_s, 4),
        }
    )
    return {
        "meta": {
            "scene": scene_name,
            "resolution_scale": scale,
            "sim_resolution_scale": sim_scale,
            "width": scene.camera.width,
            "height": scene.camera.height,
            "views": views,
            "workers": workers,
            "sim_rounds": sim_rounds,
            "serve_clients": clients,
        },
        "entries": entries,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scene", default="playroom")
    parser.add_argument("--scale", type=float, default=0.125)
    parser.add_argument("--views", type=int, default=6)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--clients", type=int, default=4,
        help="concurrent clients for the serve_throughput measurement",
    )
    parser.add_argument("--sim-rounds", type=int, default=30)
    parser.add_argument(
        "--sim-scale", type=float, default=None,
        help="resolution scale for the simulation sweep (default: --scale * 2"
        " — simulation costs need enough work units per frame to show)",
    )
    parser.add_argument("--out", default="BENCH_core.json")
    args = parser.parse_args(argv)

    report = build_report(
        args.scene, args.scale, args.views, args.workers, args.sim_rounds,
        sim_scale=args.sim_scale, clients=args.clients,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"{'benchmark':<22}{'wall_s':>9}{'speedup_vs_seed':>17}")
    for entry in report["entries"]:
        print(
            f"{entry['name']:<22}{entry['wall_s']:>9.3f}"
            f"{entry['speedup_vs_seed']:>16.2f}x"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation: does a second grouping level pay for itself?

The hierarchical extension sorts per 128x128 supergroup (even fewer sort
keys) at the price of a second bitmask level and a second filter pass.
This harness compares the GPU-model frame times of the baseline,
single-level GS-TG (16+64, the paper's design point) and two-level
GS-TG (16+64+128) — empirically justifying the paper's choice of a
single level: the extra sorting savings are marginal once group-level
sorting has already removed most redundancy, while the mask overhead is
not.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.gpu_model import baseline_frame_times, gstg_frame_times
from repro.core.hierarchical import HierarchicalGSTGRenderer
from repro.tiles.boundary import BoundaryMethod

SCENES = ("train", "playroom")


def test_ablation_hierarchy(benchmark, cache, emit):
    def measure():
        rows = []
        for name in SCENES:
            scene = cache.scene(name)
            base = cache.baseline_render(name, 16, BoundaryMethod.ELLIPSE)
            single = cache.gstg_render(
                name, 16, 64, BoundaryMethod.ELLIPSE, BoundaryMethod.ELLIPSE
            )
            double = HierarchicalGSTGRenderer(
                16, 64, 128, BoundaryMethod.ELLIPSE
            ).render(scene.cloud, scene.camera)
            assert np.array_equal(single.image, double.image)
            rows.append(
                (
                    name,
                    baseline_frame_times(base.stats).total,
                    gstg_frame_times(single.stats).total,
                    gstg_frame_times(double.stats).total,
                    single.stats.sort.num_keys,
                    double.stats.sort.num_keys,
                )
            )
        return rows

    rows = run_once(benchmark, measure)

    lines = ["Ablation: grouping hierarchy depth (GPU model, ms)",
             f"{'scene':<12}{'baseline':>9}{'16+64':>8}{'16+64+128':>11}"
             f"{'keys 1-level':>13}{'keys 2-level':>13}"]
    for name, base_ms, single_ms, double_ms, keys1, keys2 in rows:
        lines.append(
            f"{name:<12}{base_ms:>9.3f}{single_ms:>8.3f}{double_ms:>11.3f}"
            f"{keys1:>13,}{keys2:>13,}"
        )
    lines.append(
        "finding: the second level cuts sort keys further but its mask "
        "overhead cancels the gain -> the paper's single-level 16+64 is "
        "the right design point"
    )
    emit(*lines)

    for name, base_ms, single_ms, double_ms, keys1, keys2 in rows:
        # Two levels always sort fewer keys...
        assert keys2 <= keys1
        # ...but never beat the single level end to end on the GPU model
        # by a meaningful margin, while the single level beats baseline.
        assert single_ms < base_ms
        assert double_ms > single_ms * 0.95

"""Fig. 12: GS-TG speedup for boundary-method combinations.

The paper's three findings:
 1. Ellipse+Ellipse GS-TG beats every baseline.
 2. At matched boundaries, GS-TG beats its baseline.
 3. Tile grouping composes with any boundary method.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig12 import run_fig12
from repro.scenes.datasets import PROFILING_SCENES

METHODS = ("aabb", "obb", "ellipse")


def test_fig12_boundary_combos(benchmark, cache, emit):
    rows = run_once(benchmark, lambda: run_fig12(cache))

    lines = ["Fig. 12: speedup vs AABB baseline (16x16 tiles, 16+64 groups)"]
    for scene in PROFILING_SCENES:
        lines.append(f"  {scene}:")
        for r in rows:
            if r.scene != scene:
                continue
            label = (
                f"baseline[{r.group_method}]"
                if r.kind == "baseline"
                else f"gstg[{r.group_method}+{r.bitmask_method}]"
            )
            lines.append(f"    {label:<26}{r.speedup_vs_aabb:>7.3f}")
    emit(*lines)

    for scene in PROFILING_SCENES:
        scene_rows = [r for r in rows if r.scene == scene]
        base = {
            r.group_method: r.speedup_vs_aabb
            for r in scene_rows
            if r.kind == "baseline"
        }
        ours = {
            (r.group_method, r.bitmask_method): r.speedup_vs_aabb
            for r in scene_rows
            if r.kind == "gstg"
        }
        # Finding 1: Ellipse+Ellipse beats every baseline.
        assert ours[("ellipse", "ellipse")] > max(base.values())
        # Finding 2: matched-boundary GS-TG beats the matching baseline.
        for m in METHODS:
            assert ours[(m, m)] > base[m]
        # Finding 3: every combination is a valid configuration that
        # renders (all speedups positive and finite).
        assert all(v > 0 for v in ours.values())

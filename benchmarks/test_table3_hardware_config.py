"""Table III: hardware configuration of the GS-TG accelerator.

Verifies the synthesis-result constants and times a full cycle-level
simulation of one frame on the configured datapath.
"""

import pytest

from benchmarks.conftest import run_once
from repro.hardware.config import GSTG_CONFIG
from repro.hardware.simulator import simulate_gstg
from repro.tiles.boundary import BoundaryMethod


def test_table3_hardware_config(benchmark, cache, emit):
    scene = cache.scene("train")
    render = cache.gstg_render(
        "train", 16, 64, BoundaryMethod.ELLIPSE, BoundaryMethod.ELLIPSE
    )
    report = run_once(
        benchmark,
        lambda: simulate_gstg(
            render.stats, scene.camera.width, scene.camera.height, GSTG_CONFIG
        ),
    )

    lines = ["Table III: hardware configuration",
             f"{'module':<8}{'instances':>10}{'area mm^2':>11}{'power W':>9}"]
    for m in GSTG_CONFIG.modules:
        lines.append(f"{m.name:<8}{m.instances:>10}{m.area_mm2:>11.3f}{m.power_w:>9.3f}")
    lines.append(
        f"{'total':<8}{'':>10}{GSTG_CONFIG.total_area_mm2:>11.3f}"
        f"{GSTG_CONFIG.total_power_w:>9.3f}"
    )
    lines.append(f"frequency: {GSTG_CONFIG.frequency_hz/1e9:.0f} GHz | "
                 f"DRAM: {GSTG_CONFIG.dram_bandwidth_bytes_per_s/1e9:.1f} GB/s")
    lines.append(
        f"sample frame (train, 16+64): {report.cycles:,.0f} cycles = "
        f"{report.time_ms:.3f} ms, bottleneck: {report.bottleneck}"
    )
    emit(*lines)

    assert GSTG_CONFIG.total_area_mm2 == pytest.approx(3.984)
    assert GSTG_CONFIG.total_power_w == pytest.approx(1.063)
    assert GSTG_CONFIG.frequency_hz == 1e9
    assert GSTG_CONFIG.dram_bandwidth_bytes_per_s == pytest.approx(51.2e9)
    assert report.cycles > 0

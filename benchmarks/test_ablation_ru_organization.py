"""Ablation: RU organisation inside the rasterization module.

Fig. 10's RM has 16 rasterization units.  Two ways to bind them to the
group's 16 tiles:

* **pooled** — RUs drain the group's pixel work jointly (work stealing);
  group rasterization time is total alpha work / 16;
* **static tile-per-RU** — each RU owns one tile; the group is gated by
  its slowest tile.

The pooled organisation wins by the group's tile-load imbalance factor,
quantifying why the RM feeds RUs through a shared FIFO rather than
hard-partitioning them.
"""

from benchmarks.conftest import run_once
from repro.core.grouping import GroupGeometry
from repro.hardware.pipeline_sim import simulate_gstg_pipelined
from repro.tiles.boundary import BoundaryMethod

SCENES = ("train", "rubble", "residence")


def test_ablation_ru_organization(benchmark, cache, emit):
    def measure():
        rows = []
        for name in SCENES:
            scene = cache.scene(name)
            geometry = GroupGeometry(
                scene.camera.width, scene.camera.height, 16, 64
            )
            ours = cache.gstg_render(
                name, 16, 64, BoundaryMethod.ELLIPSE, BoundaryMethod.ELLIPSE
            )
            pooled = simulate_gstg_pipelined(ours, geometry, ru_per_tile=False)
            static = simulate_gstg_pipelined(ours, geometry, ru_per_tile=True)
            rows.append((name, pooled, static))
        return rows

    rows = run_once(benchmark, measure)

    lines = ["Ablation: RU organisation (pooled vs static tile-per-RU)",
             f"{'scene':<12}{'pooled':>10}{'static':>10}{'penalty':>9}"]
    for name, pooled, static in rows:
        lines.append(
            f"{name:<12}{pooled.cycles:>10,.0f}{static.cycles:>10,.0f}"
            f"{static.cycles / pooled.cycles:>9.2f}"
        )
    emit(*lines)

    for name, pooled, static in rows:
        # Static binding can never beat the pool, and the imbalance
        # penalty is material (> 10%) on real tile-load distributions.
        assert static.cycles >= pooled.cycles * 0.999
    assert any(s.cycles > p.cycles * 1.1 for _, p, s in rows)

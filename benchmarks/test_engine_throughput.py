"""Engine throughput: batched trajectory rendering vs the seed path.

Renders an 8-camera synthetic orbit trajectory twice per pipeline —
sequentially through the seed per-tile renderers, then through
``RenderEngine.render_trajectory`` with a 4-worker pool — and reports
frames/sec.  The engine must be at least 2x faster while producing
bit-identical images (the vectorized path shares every per-pixel
arithmetic step with the sequential one, so this is an equality check,
not a tolerance check).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.pipeline import GSTGRenderer
from repro.engine import RenderEngine
from repro.raster.renderer import BaselineRenderer
from repro.scenes.synthetic import load_scene
from repro.scenes.trajectory import orbit_cameras
from repro.tiles.boundary import BoundaryMethod

#: Trajectory length and pool size of the acceptance workload.
NUM_CAMERAS = 8
NUM_WORKERS = 4

#: Scale applied to the Table II resolution for the benchmark scene.
SCENE_SCALE = 0.125

#: Required engine speedup over the sequential per-camera path.  The
#: acceptance floor is 2.0; a loaded shared CI runner can override via
#: the environment without weakening the local tier-1 gate.
MIN_SPEEDUP = float(os.environ.get("ENGINE_MIN_SPEEDUP", "2.0"))

#: Timing rounds per path; the minimum is reported (standard noise
#: suppression — the true cost is the least-interrupted run).
ROUNDS = 2


def _workload():
    scene = load_scene("playroom", resolution_scale=SCENE_SCALE, seed=0)
    cameras = orbit_cameras(scene, NUM_CAMERAS)
    return scene, cameras


def _best_of(rounds, func):
    """Minimum wall time over ``rounds`` runs, plus the last result."""
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.parametrize(
    "name,renderer",
    [
        ("baseline", BaselineRenderer(16, BoundaryMethod.ELLIPSE)),
        ("gs-tg", GSTGRenderer(16, 64, BoundaryMethod.ELLIPSE)),
    ],
    ids=["baseline", "gstg"],
)
def test_engine_throughput(emit, name, renderer):
    scene, cameras = _workload()
    engine = RenderEngine(renderer)

    # Warm-up: touch both paths once (first-call allocations, imports in
    # forked workers) so the timed rounds measure steady-state rendering.
    renderer.render(scene.cloud, cameras[0])
    engine.render_trajectory(scene.cloud, cameras[:2], workers=NUM_WORKERS)

    sequential_s, sequential = _best_of(
        ROUNDS,
        lambda: [renderer.render(scene.cloud, camera) for camera in cameras],
    )
    engine_s, trajectory = _best_of(
        ROUNDS,
        lambda: engine.render_trajectory(
            scene.cloud, cameras, workers=NUM_WORKERS
        ),
    )

    speedup = sequential_s / engine_s
    emit(
        f"engine throughput [{name}] — {NUM_CAMERAS} cameras, "
        f"{scene.camera.width}x{scene.camera.height}",
        f"  sequential: {sequential_s:.2f}s "
        f"({NUM_CAMERAS / sequential_s:.2f} frames/s)",
        f"  engine ({NUM_WORKERS} workers): {engine_s:.2f}s "
        f"({NUM_CAMERAS / engine_s:.2f} frames/s)",
        f"  speedup: {speedup:.2f}x",
    )

    for reference, result in zip(sequential, trajectory.results):
        assert np.array_equal(reference.image, result.image)
    assert trajectory.stats.preprocess.num_pairs == sum(
        r.stats.preprocess.num_pairs for r in sequential
    )
    assert speedup >= MIN_SPEEDUP, (
        f"engine speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
    )

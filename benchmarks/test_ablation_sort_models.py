"""Ablation: sort-cost models vs measured quicksort comparisons.

The GPU timing model and the GSM cycle model both charge sorts with the
``n log2 n`` closed form.  This harness runs the instrumented
median-of-3 quicksort on the real per-group depth-key distributions of a
scene and quantifies the deviation — validating (or bounding) the closed
form — and compares against the bitonic network a GSCore-class sorter
would spend.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.raster.sorting import sort_comparison_count
from repro.sorting.quicksort import counting_quicksort
from repro.sorting.units import BitonicSorterModel
from repro.tiles.boundary import BoundaryMethod


def test_ablation_sort_models(benchmark, cache, emit):
    ours = cache.gstg_render(
        "train", 16, 64, BoundaryMethod.ELLIPSE, BoundaryMethod.ELLIPSE
    )
    proj = ours.projected
    assignment = ours.assignment

    def measure():
        model_total = 0.0
        measured_total = 0
        bitonic_total = 0
        per_group = {}
        for group_id in np.unique(assignment.tile_ids):
            gauss = assignment.gaussian_ids[assignment.tile_ids == group_id]
            keys = proj.depths[gauss]
            result = counting_quicksort(keys)
            model = sort_comparison_count(len(keys))
            per_group[int(group_id)] = (len(keys), result.comparisons, model)
            measured_total += result.comparisons
            model_total += model
            bitonic_total += BitonicSorterModel().comparator_count(len(keys))
        return model_total, measured_total, bitonic_total, per_group

    model_total, measured_total, bitonic_total, per_group = run_once(
        benchmark, measure
    )
    ratio = measured_total / max(model_total, 1.0)

    lines = ["Ablation: sort-model validation (train, group-level sorts)",
             f"{'group':>7}{'keys':>7}{'measured':>10}{'n log2 n':>10}"]
    for group_id, (n, measured, model) in sorted(per_group.items())[:8]:
        lines.append(f"{group_id:>7}{n:>7}{measured:>10}{model:>10.0f}")
    lines.append(
        f"totals: measured {measured_total:,} vs model {model_total:,.0f} "
        f"(ratio {ratio:.2f}); bitonic network would spend {bitonic_total:,} "
        f"compare-exchanges ({bitonic_total / max(measured_total, 1):.1f}x "
        f"the quicksort)"
    )
    emit(*lines)

    # The closed form is a faithful stand-in: within 2.5x on real
    # depth-key distributions (median-of-3 constants differ from the
    # idealised bound but the growth matches).
    assert 0.4 < ratio < 2.5
    # A fixed bitonic network always does more raw work than quicksort
    # at these sizes.
    assert bitonic_total > measured_total
